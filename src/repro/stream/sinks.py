"""Chunk sinks: bounded-memory writers for marked relations.

A :class:`ChunkSink` receives the marked chunks of a streaming embed and
persists them — CSV (plain or gzip), SQLite, or an in-memory table for
tests.  Sinks expose two small hooks the checkpoint layer builds resume
on:

* :meth:`ChunkSink.flush_state` — flush everything written so far and
  return a JSON-serializable durability marker (a byte offset, a row
  count);
* :meth:`ChunkSink.restore` — reopen the sink positioned exactly at such
  a marker, discarding anything written after it (the partial chunk a
  crash may have left behind).

Both gzip framing (one gzip *member* per flush interval — concatenated
members are a single valid gzip stream) and SQLite transactions (one
commit per chunk) are chosen so that every marker is a clean truncation
point.
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import io
import os
import sqlite3
from pathlib import Path
from typing import Any

from ..relational import AttributeType, Schema, Table
from ..reliability.faults import (
    BITFLIP,
    TORN_WRITE,
    InjectedFaultError,
    active_plan,
    fault_point,
    injection_armed,
)
from ..reliability.integrity import ChunkDigest, ChunkManifest, digest_rows
from .errors import StreamError
from .sources import _quote_identifier


class ChunkSink:
    """Destination for the marked chunks of a streaming embed."""

    #: sinks that can record a per-chunk content-digest manifest (byte
    #: ranges for file sinks, rowid ranges for SQLite) override this and
    #: honour :meth:`arm_manifest` called before ``open``/``restore``
    supports_manifest = False

    #: the :class:`~repro.reliability.integrity.ChunkManifest` recorded
    #: so far (``None`` when recording is not armed)
    manifest: ChunkManifest | None = None

    def arm_manifest(self) -> None:
        """Turn on chunk-digest recording (before ``open``/``restore``)."""
        raise StreamError(
            f"{type(self).__name__} does not record a chunk-hash manifest"
        )

    def restore_manifest(self, manifest: ChunkManifest) -> None:
        """Install a manifest prefix recovered from the journal (resume)."""
        self.manifest = manifest

    def open(self, schema: Schema) -> None:
        """Begin a fresh output for ``schema`` (truncates prior content)."""
        raise NotImplementedError

    def write_chunk(self, chunk: Table) -> None:
        """Append one marked chunk.

        The pipeline calls this exactly once per *original source chunk*,
        whatever adaptation happened upstream: a memory-budget shrink
        slices the embed, then reassembles the marked rows so the sink
        still sees the original framing — which is what keeps gzip member
        boundaries (hence output bytes) identical across adapted and
        unadapted runs.
        """
        raise NotImplementedError

    def flush_state(self) -> dict[str, Any]:
        """Flush and return a durability marker for checkpointing."""
        raise NotImplementedError

    def restore(self, schema: Schema, state: dict[str, Any]) -> None:
        """Reopen at ``state`` (from :meth:`flush_state`), dropping
        anything written after that marker."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ChunkSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CSVChunkSink(ChunkSink):
    """CSV writer, gzip-compressed when the path says so.

    Plain CSV flushes are byte offsets into a growing text file; gzip
    output closes one compressed *member* per flush interval (header
    member first, then one per chunk), so every recorded offset sits on a
    member boundary and truncating there leaves a valid gzip stream.
    ``mtime=0`` keeps members byte-deterministic — a resumed run produces
    the identical file an uninterrupted run would have.
    """

    def __init__(self, path: str | Path, compress: bool | None = None):
        self.path = Path(path)
        # Writers decide by the *requested* path suffix (or the explicit
        # flag), never by sniffing pre-existing bytes the open() below is
        # about to truncate — stale gzip content at a ``.csv`` path must
        # not make a fresh run silently write gzip.
        self.compress = (
            self.path.suffix == ".gz" if compress is None else compress
        )
        self._raw = None
        self._text = None
        self._writer = None
        self._schema: Schema | None = None
        self._chunks = 0
        self._record = False
        self._segment_start = 0

    supports_manifest = True

    def arm_manifest(self) -> None:
        self._record = True

    # -- lifecycle -------------------------------------------------------------
    def open(self, schema: Schema) -> None:
        self._schema = schema
        self._chunks = 0
        self._raw = open(self.path, "wb")
        if self._record:
            # recording encodes each segment in memory first, so its
            # digest comes straight off the bytes about to be written —
            # no read-back pass, no hashing proxy on the write path
            self.manifest = ChunkManifest(kind="bytes")
            payload = self._encode_segment([schema.names])
            self._raw.write(payload)
            # the header segment (column names) gets its own digest so an
            # audit can tell "damaged preamble" from "damaged chunk k"
            self.manifest.header = ChunkDigest(
                index=-1,
                start=0,
                end=len(payload),
                digest=hashlib.sha256(payload).hexdigest(),
            )
        elif self.compress:
            self._begin_member()
            self._write_rows([schema.names])
            self._end_member()
        else:
            self._begin_text()
            self._write_rows([schema.names])
            self._text.flush()

    def restore(self, schema: Schema, state: dict[str, Any]) -> None:
        self._abort()
        offset = int(state["offset"])
        self._schema = schema
        self._chunks = int(state.get("chunks", 0))
        self._raw = open(self.path, "r+b")
        self._raw.truncate(offset)
        self._raw.seek(offset)
        if self._record:
            if self.manifest is None:
                self.manifest = ChunkManifest(kind="bytes")
            else:
                # a retry rollback re-writes the chunk; its stale entry
                # must not survive next to the fresh one
                self.manifest.truncate(self._chunks)
        elif not self.compress:
            self._begin_text()

    def _abort(self) -> None:
        # Drop whatever handles a failed write left half-open, *without*
        # flushing — restore() truncates back to the durable marker, so
        # buffered bytes from the failed chunk must not leak out first.
        self._text = None
        self._writer = None
        if self._raw is not None:
            try:
                self._raw.close()
            except OSError:
                pass
            self._raw = None

    def close(self) -> None:
        if self._text is not None and not self.compress:
            self._text.flush()
            self._text.detach()
            self._text = None
        if self._raw is not None:
            self._raw.close()
            self._raw = None
        self._writer = None

    # -- writing ---------------------------------------------------------------
    def write_chunk(self, chunk: Table) -> None:
        index = self._chunks
        # Injection points: "sink.write" fails before any byte of the
        # chunk lands; "sink.write.mid" persists a torn prefix (flushed
        # to the OS with no member trailer / row terminator) and *then*
        # fails — the state a real crash mid-flush leaves behind.
        fault_point("sink.write", index)
        if injection_armed() and active_plan().scheduled(
            "sink.write.mid", index
        ):
            self._write_torn(chunk, index)
        if self._record:
            # the whole segment is encoded in memory, hashed, and written
            # with one raw call; ``digest`` covers exactly the bytes an
            # audit (or a verified read) will find in ``[start, end)``
            payload = self._encode_segment(chunk)
            self._segment_start = self._raw.tell()
            self._raw.write(payload)
            self.manifest.entries.append(ChunkDigest(
                index=index,
                start=self._segment_start,
                end=self._segment_start + len(payload),
                digest=hashlib.sha256(payload).hexdigest(),
            ))
        elif self.compress:
            self._begin_member()
            self._write_rows(chunk)
            self._end_member()
        else:
            self._write_rows(chunk)
        self._chunks += 1
        if injection_armed() and active_plan().scheduled(
            "sink.bitflip", index
        ):
            self._bitflip(index)

    def _bitflip(self, index: int) -> None:
        # Silent post-flush media damage: flip one bit inside the chunk
        # just written, then continue as if nothing happened.  No error
        # surfaces — only the manifest digest can reveal the damage.
        kind = fault_point("sink.bitflip", index)
        if kind != BITFLIP:
            return
        if self._text is not None and not self.compress:
            self._text.flush()
        self._raw.flush()
        os.fsync(self._raw.fileno())
        start = self._segment_start if self._record else 0
        end = self._raw.tell()
        if end <= start:  # pragma: no cover — empty chunk
            return
        rng = active_plan().rng("sink.bitflip", index)
        position = rng.randrange(start, end)
        with open(self.path, "r+b") as handle:
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ (1 << rng.randrange(8))]))

    def _write_torn(self, chunk: Table, index: int) -> None:
        plan = active_plan()
        rows = list(iter(chunk))
        cut = plan.rng("sink.write.mid", index).randrange(
            1, max(2, len(rows))
        )
        if self._record:
            self._raw.write(self._encode_segment(rows[:cut], torn=True))
        elif self.compress:
            self._begin_member()
            self._write_rows(rows[:cut])
            member = self._text.detach()
            member.flush()  # compressed bytes reach _raw; no trailer
            self._text = None
            self._writer = None
        else:
            self._write_rows(rows[:cut])
            self._text.flush()
        self._raw.flush()
        os.fsync(self._raw.fileno())
        kind = fault_point("sink.write.mid", index)
        raise InjectedFaultError("sink.write.mid", index, kind or TORN_WRITE)

    def flush_state(self) -> dict[str, Any]:
        fault_point("sink.flush", self._chunks)
        if self._text is not None and not self.compress:
            self._text.flush()
        self._raw.flush()
        os.fsync(self._raw.fileno())
        return {"offset": self._raw.tell(), "chunks": self._chunks}

    # -- internals -------------------------------------------------------------
    def _encode_segment(self, rows, torn: bool = False) -> bytes:
        """The exact bytes one flush segment of ``rows`` puts on disk.

        Produces byte-for-byte what the streaming writers produce — a
        gzip member (``filename=""``, ``mtime=0``; deflate output depends
        only on the input bytes, not on write chunking) or utf-8 CSV text
        — so recorded digests hold for armed and disarmed runs alike.
        ``torn`` emits a gzip member *without* its trailer (the state a
        crash mid-flush leaves) instead of a complete one.
        """
        if not self.compress:
            buffer = io.StringIO()
            csv.writer(buffer).writerows(rows)
            return buffer.getvalue().encode("utf-8")
        raw = io.BytesIO()
        member = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
        text = io.TextIOWrapper(member, encoding="utf-8", newline="")
        csv.writer(text).writerows(rows)
        text.detach()
        if torn:
            member.flush()  # compressed bytes, no trailer
        else:
            member.close()
        return raw.getvalue()

    def _begin_text(self) -> None:
        self._text = io.TextIOWrapper(
            self._raw, encoding="utf-8", newline=""
        )
        self._writer = csv.writer(self._text)

    def _begin_member(self) -> None:
        # filename="" drops the FNAME header field and mtime=0 the
        # timestamp, so members are byte-deterministic: a resumed run's
        # file is identical to an uninterrupted run's, whatever the path.
        member = gzip.GzipFile(
            filename="", fileobj=self._raw, mode="wb", mtime=0
        )
        self._text = io.TextIOWrapper(member, encoding="utf-8", newline="")
        self._writer = csv.writer(self._text)

    def _end_member(self) -> None:
        member = self._text.detach()
        member.close()
        self._text = None
        self._writer = None

    def _write_rows(self, rows) -> None:
        self._writer.writerows(rows)


_AFFINITY = {
    AttributeType.INTEGER: "INTEGER",
    AttributeType.REAL: "REAL",
    AttributeType.STRING: "TEXT",
    # No declared type => BLOB affinity: SQLite stores categorical values
    # exactly as given (an out-of-domain "007" string must not come back
    # as the integer 7).
    AttributeType.CATEGORICAL: "",
}


class SQLiteChunkSink(ChunkSink):
    """SQLite writer: one table, one transaction commit per chunk.

    The commit-per-chunk rhythm makes the database itself the durability
    mechanism — an interrupted chunk rolls back — and :meth:`restore`
    deletes any rows a crash landed *after* the last checkpoint was
    recorded (committed chunk, unwritten checkpoint).
    """

    def __init__(self, path: str | Path, table: str = "relation"):
        self.path = Path(path)
        self.table = table
        self._connection: sqlite3.Connection | None = None
        self._insert: str | None = None
        self._names: list[str] = []
        self._rows_written = 0
        self._chunks = 0
        self._record = False

    supports_manifest = True

    def arm_manifest(self) -> None:
        self._record = True

    def open(self, schema: Schema) -> None:
        if self._record:
            self.manifest = ChunkManifest(kind="rows")
        self._connect(schema)
        quoted = _quote_identifier(self.table)
        self._connection.execute(f"DROP TABLE IF EXISTS {quoted}")
        columns = ", ".join(
            f"{_quote_identifier(a.name)} {_AFFINITY[a.atype]}".rstrip()
            for a in schema.attributes
        )
        self._connection.execute(f"CREATE TABLE {quoted} ({columns})")
        self._connection.commit()
        self._rows_written = 0
        self._chunks = 0

    def restore(self, schema: Schema, state: dict[str, Any]) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        rows = int(state["rows"])
        self._connect(schema)
        quoted = _quote_identifier(self.table)
        self._connection.execute(
            f"DELETE FROM {quoted} WHERE rowid IN "
            f"(SELECT rowid FROM {quoted} ORDER BY rowid LIMIT -1 OFFSET ?)",
            (rows,),
        )
        self._connection.commit()
        self._rows_written = rows
        self._chunks = int(state.get("chunks", 0))
        if self._record:
            if self.manifest is None:
                self.manifest = ChunkManifest(kind="rows")
            else:
                self.manifest.truncate(self._chunks)

    def _connect(self, schema: Schema) -> None:
        self._connection = sqlite3.connect(self.path)
        self._names = list(schema.names)
        placeholders = ", ".join("?" for _ in schema.names)
        columns = ", ".join(
            _quote_identifier(column) for column in schema.names
        )
        self._insert = (
            f"INSERT INTO {_quote_identifier(self.table)} "
            f"({columns}) VALUES ({placeholders})"
        )

    def write_chunk(self, chunk: Table) -> None:
        # Injection point: a failed commit rolls the chunk back — SQLite
        # itself is the torn-write protection, so only the boundary
        # fault is meaningful here.
        index = self._chunks
        fault_point("sink.write", index)
        self._connection.executemany(self._insert, iter(chunk))
        self._connection.commit()
        start = self._rows_written
        self._rows_written += len(chunk)
        self._chunks += 1
        if self._record:
            # ranges are rowid offsets; byte offsets are meaningless in a
            # database file, so the row-content digest is the identity
            rows_digest = digest_rows(chunk)
            self.manifest.entries.append(ChunkDigest(
                index=index,
                start=start,
                end=self._rows_written,
                digest=rows_digest,
                rows_digest=rows_digest,
            ))
        if injection_armed() and active_plan().scheduled(
            "sink.bitflip", index
        ):
            self._bitflip(index, start, self._rows_written)

    def _bitflip(self, index: int, start: int, end: int) -> None:
        # Silent committed-data damage: overwrite one cell in the chunk
        # just committed, then continue.  Only the audit can catch it.
        kind = fault_point("sink.bitflip", index)
        if kind != BITFLIP:
            return
        rng = active_plan().rng("sink.bitflip", index)
        offset = rng.randrange(start, max(start + 1, end))
        column = rng.choice(self._names)
        quoted = _quote_identifier(self.table)
        self._connection.execute(
            f"UPDATE {quoted} SET {_quote_identifier(column)} = ? "
            f"WHERE rowid = (SELECT rowid FROM {quoted} "
            f"ORDER BY rowid LIMIT 1 OFFSET ?)",
            ("☠bitrot", offset),
        )
        self._connection.commit()

    def flush_state(self) -> dict[str, Any]:
        fault_point("sink.flush", self._chunks)
        return {"rows": self._rows_written, "chunks": self._chunks}

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


class TableChunkSink(ChunkSink):
    """Collects marked chunks into one in-memory :class:`Table` (tests,
    equivalence suites, small pipelines)."""

    def __init__(self, name: str = "marked"):
        self.name = name
        self.table: Table | None = None

    def open(self, schema: Schema) -> None:
        self.table = Table(schema, (), name=self.name)

    def restore(self, schema: Schema, state: dict[str, Any]) -> None:
        raise StreamError("TableChunkSink does not support resume")

    def write_chunk(self, chunk: Table) -> None:
        self.table.append_rows(iter(chunk))

    def flush_state(self) -> dict[str, Any]:
        return {"rows": len(self.table)}

    def close(self) -> None:  # nothing to release
        pass


class NullChunkSink(ChunkSink):
    """Discards chunks (embed-throughput measurement)."""

    def __init__(self):
        self.rows = 0

    def open(self, schema: Schema) -> None:
        self.rows = 0

    def restore(self, schema: Schema, state: dict[str, Any]) -> None:
        self.rows = int(state["rows"])

    def write_chunk(self, chunk: Table) -> None:
        self.rows += len(chunk)

    def flush_state(self) -> dict[str, Any]:
        return {"rows": self.rows}

    def close(self) -> None:
        pass


def open_sink(path: str | Path, table: str = "relation") -> ChunkSink:
    """A chunk sink for ``path`` picked by file type (mirrors
    :func:`repro.stream.sources.open_source`)."""
    path = Path(path)
    if path.suffix in {".sqlite", ".sqlite3", ".db"}:
        return SQLiteChunkSink(path, table=table)
    return CSVChunkSink(path)
