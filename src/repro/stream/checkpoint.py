"""Checkpoint files: resumable streaming embeds.

A streaming mark over millions of rows can be interrupted — process
crash, preempted batch job — and must not restart from row zero.  After
every chunk the pipeline flushes the sink and atomically records a small
JSON checkpoint: how many chunks/rows are durably written, the merged
embedding counters, and the sink's durability marker.  Resume re-opens
the sink at that marker (truncating whatever a crash half-wrote), skips
the completed chunks in the source, and continues with identical state —
a resumed run produces bit-identical output to an uninterrupted one,
because every embedding decision is a pure function of the secret key and
the chunk contents (the keyed scheme needs no cross-chunk rng).

Checkpoints carry **no secret material**: the run is identified by a
one-way fingerprint over the key pair, the spec, and the watermark, which
also guards against resuming with mismatched parameters (a silent way to
produce a half-marked relation).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any

from ..core import EmbeddingSpec, Watermark
from ..crypto import MarkKey
from .errors import CheckpointError

_FORMAT = 1


def mark_fingerprint(
    key: MarkKey, spec: EmbeddingSpec, watermark: Watermark
) -> str:
    """One-way identity of a (key, spec, watermark) streaming run."""
    payload = json.dumps(
        {"spec": spec.to_dict(), "watermark": watermark.to_bitstring()},
        sort_keys=True,
    ).encode("utf-8")
    digest = sha256(
        b"stream-checkpoint|" + key.k1 + b"|" + key.k2 + b"|" + payload
    )
    return digest.hexdigest()[:32]


@dataclass
class MarkCheckpoint:
    """Durable progress of one streaming embed."""

    fingerprint: str
    chunks_done: int
    rows_done: int
    counters: dict[str, int] = field(default_factory=dict)
    slots_written: list[int] = field(default_factory=list)
    vetoes_by_constraint: dict[str, int] = field(default_factory=dict)
    sink_state: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": _FORMAT,
                "fingerprint": self.fingerprint,
                "chunks_done": self.chunks_done,
                "rows_done": self.rows_done,
                "counters": self.counters,
                "slots_written": self.slots_written,
                "vetoes_by_constraint": self.vetoes_by_constraint,
                "sink_state": self.sink_state,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MarkCheckpoint":
        try:
            payload = json.loads(text)
            if payload.get("format") != _FORMAT:
                raise CheckpointError(
                    f"unsupported checkpoint format {payload.get('format')!r}"
                )
            return cls(
                fingerprint=payload["fingerprint"],
                chunks_done=int(payload["chunks_done"]),
                rows_done=int(payload["rows_done"]),
                counters={
                    name: int(value)
                    for name, value in payload["counters"].items()
                },
                slots_written=[int(slot) for slot in payload["slots_written"]],
                vetoes_by_constraint={
                    name: int(value)
                    for name, value in payload["vetoes_by_constraint"].items()
                },
                sink_state=payload["sink_state"],
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


def save_checkpoint(path: str | Path, checkpoint: MarkCheckpoint) -> None:
    """Atomically persist ``checkpoint`` (write-temp-then-rename).

    A crash mid-save leaves either the previous checkpoint or the new one
    on disk, never a torn file — the invariant resume correctness rests
    on.
    """
    path = Path(path)
    scratch = path.with_name(path.name + ".tmp")
    with open(scratch, "w", encoding="utf-8") as handle:
        handle.write(checkpoint.to_json() + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, path)


def load_checkpoint(path: str | Path) -> MarkCheckpoint | None:
    """The checkpoint at ``path``, or ``None`` when none was written."""
    path = Path(path)
    if not path.exists():
        return None
    return MarkCheckpoint.from_json(path.read_text(encoding="utf-8"))
