"""Checkpoint files: resumable streaming embeds.

A streaming mark over millions of rows can be interrupted — process
crash, preempted batch job — and must not restart from row zero.  After
every chunk the pipeline flushes the sink and atomically records a small
JSON checkpoint: how many chunks/rows are durably written, the merged
embedding counters, and the sink's durability marker.  Resume re-opens
the sink at that marker (truncating whatever a crash half-wrote), skips
the completed chunks in the source, and continues with identical state —
a resumed run produces bit-identical output to an uninterrupted one,
because every embedding decision is a pure function of the secret key and
the chunk contents (the keyed scheme needs no cross-chunk rng).

Checkpoints carry **no secret material**: the run is identified by a
one-way fingerprint over the key pair, the spec, and the watermark, which
also guards against resuming with mismatched parameters (a silent way to
produce a half-marked relation).

Trust, but verify
-----------------

A checkpoint the pipeline cannot *verify* is worse than none: resuming
from a bit-rotted or torn payload silently produces a half-marked
relation.  Every payload therefore carries a ``schema_version`` and a
CRC-32 over the canonical body; :func:`load_checkpoint` rejects
mismatches with :class:`CheckpointCorruptError` (naming the file and the
offset where verification failed) instead of resuming from garbage.
:func:`save_checkpoint` additionally rotates the previous checkpoint to
``<path>.prev`` before installing the new one, so
:func:`load_verified_checkpoint` can roll back to the last *verified*
record when the newest is damaged — re-marking one extra chunk is cheap;
trusting a corrupt checkpoint is not.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any

from ..core import EmbeddingSpec, Watermark
from ..crypto import MarkKey
from ..reliability.faults import (
    BITFLIP,
    CORRUPT_JSON,
    TORN_WRITE,
    active_plan,
    fault_point,
)
from .errors import CheckpointCorruptError, CheckpointError

#: checkpoint payload schema version; bumped whenever the payload shape
#: changes (v1 predates CRC verification and is rejected as unverifiable)
SCHEMA_VERSION = 2

#: suffix of the rotated previous checkpoint (the rollback target)
PREV_SUFFIX = ".prev"


def mark_fingerprint(
    key: MarkKey, spec: EmbeddingSpec, watermark: Watermark
) -> str:
    """One-way identity of a (key, spec, watermark) streaming run."""
    payload = json.dumps(
        {"spec": spec.to_dict(), "watermark": watermark.to_bitstring()},
        sort_keys=True,
    ).encode("utf-8")
    digest = sha256(
        b"stream-checkpoint|" + key.k1 + b"|" + key.k2 + b"|" + payload
    )
    return digest.hexdigest()[:32]


@dataclass
class MarkCheckpoint:
    """Durable progress of one streaming embed."""

    fingerprint: str
    chunks_done: int
    rows_done: int
    counters: dict[str, int] = field(default_factory=dict)
    slots_written: list[int] = field(default_factory=list)
    vetoes_by_constraint: dict[str, int] = field(default_factory=dict)
    sink_state: dict[str, Any] = field(default_factory=dict)

    def _body(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "chunks_done": self.chunks_done,
            "rows_done": self.rows_done,
            "counters": self.counters,
            "slots_written": self.slots_written,
            "vetoes_by_constraint": self.vetoes_by_constraint,
            "sink_state": self.sink_state,
        }

    def to_json(self) -> str:
        body = self._body()
        # The CRC covers the canonical (sorted-keys) encoding of the body
        # alone; load recomputes it the same way, so any damaged byte in
        # the payload — including the schema_version — is detected.
        body["crc"] = zlib.crc32(
            json.dumps(body, sort_keys=True).encode("utf-8")
        )
        return json.dumps(body, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, path: str | Path = "<memory>") -> "MarkCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                path, f"not valid JSON: {exc.msg}", offset=exc.pos
            ) from exc
        if not isinstance(payload, dict):
            raise CheckpointCorruptError(path, "payload is not a JSON object")
        crc = payload.pop("crc", None)
        if crc is None:
            raise CheckpointCorruptError(
                path, "missing crc field (pre-verification v1 file, or "
                "truncated payload)"
            )
        expected = zlib.crc32(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        if crc != expected:
            raise CheckpointCorruptError(
                path, f"crc mismatch (stored {crc}, computed {expected})"
            )
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema version "
                f"{payload.get('schema_version')!r} in {path} "
                f"(this build writes v{SCHEMA_VERSION})"
            )
        try:
            return cls(
                fingerprint=payload["fingerprint"],
                chunks_done=int(payload["chunks_done"]),
                rows_done=int(payload["rows_done"]),
                counters={
                    name: int(value)
                    for name, value in payload["counters"].items()
                },
                slots_written=[int(slot) for slot in payload["slots_written"]],
                vetoes_by_constraint={
                    name: int(value)
                    for name, value in payload["vetoes_by_constraint"].items()
                },
                sink_state=payload["sink_state"],
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            # CRC-valid but shape-invalid: a foreign (hand-edited?) file,
            # not bit rot — still refuse with the file named.
            raise CheckpointError(
                f"malformed checkpoint {path}: {exc}"
            ) from exc


def _prev_path(path: Path) -> Path:
    return path.with_name(path.name + PREV_SUFFIX)


def save_checkpoint(path: str | Path, checkpoint: MarkCheckpoint) -> None:
    """Atomically persist ``checkpoint`` (write-temp-then-rename).

    A crash mid-save leaves either the previous checkpoint or the new one
    on disk, never a torn file — the invariant resume correctness rests
    on.  The previous record is rotated to ``<path>.prev`` first, so even
    a checkpoint corrupted *after* landing (bit rot, a torn write from a
    buggy filesystem) leaves a verified rollback target; the only crash
    window with no ``path`` on disk is between the two renames, which
    :func:`load_verified_checkpoint` covers by falling back to ``.prev``.
    """
    path = Path(path)
    payload = checkpoint.to_json()
    # Injection point: checkpoint persistence is exactly where silent
    # corruption is most dangerous, so the chaos suite plants torn and
    # bit-rotted payloads here (CRC verification must catch both).
    kind = fault_point("checkpoint.save", checkpoint.chunks_done)
    if kind in (CORRUPT_JSON, BITFLIP):
        # BITFLIP here is post-flush media damage on the checkpoint file
        # itself — same observable as CORRUPT_JSON: payload lands whole
        # but rotted, and only the CRC can tell.
        kind = CORRUPT_JSON
    if kind == CORRUPT_JSON:
        payload = _bit_rot(
            payload, active_plan().rng("checkpoint.save", checkpoint.chunks_done)
        )
    elif kind == TORN_WRITE:
        # Simulate a non-atomic writer / failing rename: a prefix of the
        # payload lands at the *final* path.
        cut = max(1, len(payload) // 2)
        if path.exists():
            os.replace(path, _prev_path(path))
        path.write_text(payload[:cut], encoding="utf-8")
        return
    scratch = path.with_name(path.name + ".tmp")
    with open(scratch, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if path.exists():
        os.replace(path, _prev_path(path))
    os.replace(scratch, path)


def _bit_rot(payload: str, rng) -> str:
    """Corrupt ``payload`` like silent media damage would: a few digit
    characters flipped, JSON syntax preserved (so only the CRC catches
    it)."""
    chars = list(payload)
    digit_positions = [
        index for index, char in enumerate(chars) if char.isdigit()
    ]
    for position in rng.sample(digit_positions, min(3, len(digit_positions))):
        chars[position] = rng.choice(
            [d for d in "0123456789" if d != chars[position]]
        )
    return "".join(chars)


def load_checkpoint(path: str | Path) -> MarkCheckpoint | None:
    """The checkpoint at ``path``, or ``None`` when none was written.

    Raises :class:`CheckpointCorruptError` when a file exists but fails
    CRC/schema verification — corruption must never look like "no
    checkpoint" (which would silently restart a half-written output from
    scratch under a stale sink).
    """
    path = Path(path)
    if not path.exists():
        return None
    return MarkCheckpoint.from_json(
        path.read_text(encoding="utf-8"), path=path
    )


def load_verified_checkpoint(
    path: str | Path,
) -> tuple[MarkCheckpoint | None, bool]:
    """The newest checkpoint that passes verification: ``(checkpoint,
    rolled_back)``.

    Tries ``path`` first; on corruption (or a crash window that left only
    the rotated file) falls back to ``<path>.prev``.  ``rolled_back`` is
    ``True`` when the previous record was used.  Raises the *original*
    :class:`CheckpointCorruptError` when the newest record is corrupt and
    no verified fallback exists — resuming must fail loudly, not restart
    silently.
    """
    path = Path(path)
    prev = _prev_path(path)
    try:
        checkpoint = load_checkpoint(path)
    except CheckpointCorruptError:
        if prev.exists():
            try:
                return load_checkpoint(prev), True
            except CheckpointCorruptError:
                pass
        raise
    if checkpoint is not None:
        return checkpoint, False
    if prev.exists():
        # Crash between the rotation renames: only .prev survived.
        return load_checkpoint(prev), True
    return None, False
