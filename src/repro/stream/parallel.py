"""Multicore streaming: read-ahead decode + parallel chunk kernels.

The scheme's per-tuple decisions are pure functions of a keyed hash of
the tuple's key value, so chunks are independent by construction and
``VoteAccumulator`` merges are associative.  This module exploits both
without giving up a single bit of determinism:

* **Coordinator** (this process) — decodes chunk *payloads* (raw CSV
  field lists, typed row tuples; see
  :func:`~repro.stream.sources.payload_chunks`) up to a bounded
  read-ahead window of ``2 × workers`` chunks ahead of the oldest
  uncommitted chunk, submitting each to the pool so decode overlaps
  compute.  It then always blocks on the *lowest-index* in-flight
  future: detection merges that chunk's tallies into the accumulators,
  embedding writes the marked chunk to the sink and checkpoints — both
  in strict chunk order.  Ordered merge preserves the global first-vote
  tie rule; ordered commit preserves the sink's one-gzip-member-per-
  chunk framing — which is what pins ``workers=N`` bit-identical to
  ``workers=1`` and to the in-memory verifiers.

* **Workers** (a persistent ``ProcessPoolExecutor``, keyed by the
  pickled run state) — are initialized once with keys, spec, domain and
  schema; each builds one warm chunk-bounded
  :func:`~repro.stream.pipeline.stream_engine` per key, then
  materializes every task's payload (the expensive per-cell CSV typing
  happens *here*, not in the coordinator) and runs the exact serial
  per-chunk kernels, so a worker's tallies and marked rows are the ones
  the serial loop would produce.

Reliability integration: every pool wait is capped by the run's
:class:`~repro.reliability.Deadline`; the PR-7
:class:`~repro.reliability.Watchdog` heartbeats workers and SIGKILLs
hung ones; a :class:`~repro.reliability.RetryPolicy` re-dispatches
failed chunks (pure functions — the replay is bit-identical) and
respawns a broken pool; and the :class:`~repro.reliability.CircuitBreaker`
label :data:`STREAM_PARALLEL_LABEL` opens a ``parallel → serial``
degradation ladder that computes the remaining chunks in the
coordinator with the same kernels — same bits, one core.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import shutil
import signal
import tempfile
import time
from collections import OrderedDict
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..core import kernels
from ..core.detection import SlotVotes, VoteAccumulator
from ..core.embedding import EmbeddingSpec, VARIANT_MAP
from ..core.errors import DetectionError
from ..core.watermark import Watermark
from ..crypto import SCALAR, MarkKey
from ..quality import QualityGuard
from ..relational import CategoricalDomain, Table
from ..relational.csvio import cell_parsers, parse_row
from ..reliability.breaker import CircuitBreaker
from ..reliability.deadline import Deadline, check_deadline
from ..reliability.faults import (
    HANG,
    KILL,
    MEMORY,
    SLOW,
    InjectedFaultError,
    active_plan,
    fault_point,
)
from ..reliability.report import ReliabilityReport
from ..reliability.retry import (
    TRANSIENT,
    TRANSIENT_TYPES,
    RetryError,
    RetryPolicy,
    classify,
)
from ..reliability.watchdog import IDLE, Watchdog, beat
from .errors import BadRowError, StreamError
from .pipeline import (
    _chunk_votes,
    _chunk_votes_adaptive,
    _embed_chunk,
    _vector_chunk,
    stream_engine,
)
from .sources import (
    PAYLOAD_RAW,
    PAYLOAD_TABLE,
    ChunkTask,
    build_chunk_table,
    payload_chunks,
    payload_profile,
)

logger = logging.getLogger(__name__)

#: circuit-breaker label of the parallel -> serial degradation ladder
STREAM_PARALLEL_LABEL = "stream.parallel"

#: ``workers=`` sentinel: size the pool from the machine
AUTO_WORKERS = "auto"

#: read-ahead depth as a multiple of the worker count: enough decoded
#: chunks in flight to keep every worker busy while the head commits,
#: small enough that coordinator memory stays O(workers × chunk)
READAHEAD_FACTOR = 2


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers=`` parameter to a positive worker count.

    ``None`` and ``1`` keep the historical single-process path (no pool,
    no pickling — exact serial code).  ``"auto"`` applies the cpu_count
    heuristic: reserve one core for the coordinator's read-ahead decode
    and fan the rest, never fewer than two workers once a second core
    exists and never more than eight (the coordinator's record reading +
    pickling saturates long before that).
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers.lower() != AUTO_WORKERS:
            raise StreamError(
                f"workers must be a positive int or {AUTO_WORKERS!r}, "
                f"got {workers!r}"
            )
        cores = os.cpu_count() or 1
        if cores < 2:
            return 1
        return max(2, min(cores - 1, 8))
    count = int(workers)
    if count < 1:
        raise StreamError(f"workers must be >= 1, got {workers!r}")
    return count


def resolve_watchdog(watchdog: Watchdog | bool | None) -> Watchdog | None:
    """``None`` takes the default heartbeat watchdog (parallel runs
    should never block forever on a hung worker); ``False`` disables."""
    if watchdog is False:
        return None
    if isinstance(watchdog, Watchdog):
        return watchdog
    return Watchdog()


@dataclass
class ParallelReport:
    """Telemetry of one parallel streaming run."""

    workers: int
    #: chunks whose result came from a pool worker
    chunks_parallel: int = 0
    #: chunks computed in the coordinator after the parallel -> serial
    #: degradation ladder engaged (bit-identical, one core)
    chunks_serial: int = 0
    #: tasks re-submitted after a worker failure (bit-identical replays)
    redispatches: int = 0
    #: last telemetry snapshot per worker pid — chunks processed, kernel
    #: launches and digests computed since the worker was forked
    worker_stats: dict[int, dict[str, Any]] = field(default_factory=dict)

    def note(self, stats: dict[str, Any] | None) -> None:
        if stats is not None:
            self.worker_stats[stats["pid"]] = {
                key: value for key, value in stats.items() if key != "pid"
            }


# -- chunk materialization (shared by workers and the serial fallback) ---------

def _build_chunk(
    task: ChunkTask,
    schema,
    name: str,
    path: str | None,
    infer: bool,
    trusted: bool,
    parsers,
) -> Table:
    """Materialize one payload into the exact chunk table the serial
    source would have yielded."""
    if task.kind == PAYLOAD_TABLE:
        return task.payload
    if task.kind == PAYLOAD_RAW:
        arity = schema.arity
        origin = task.origin or path or name
        number = task.first_row_number
        rows = []
        for record in task.payload:
            number += 1
            try:
                rows.append(parse_row(record, parsers, arity, number))
            except ValueError as exc:
                raise BadRowError(origin, number, str(exc)) from exc
    else:
        rows = task.payload
    return build_chunk_table(
        schema, rows, task.index, name, infer=infer, trusted=trusted
    )


# -- the persistent worker pool ------------------------------------------------
#
# One module-level executor, keyed by (hash of the pickled run state,
# worker count) — mirroring the sweep engine's pool.  Workers hold warm
# per-key stream engines, so a mark-then-verify pair (or repeated verify
# calls with the same run state) re-hashes nothing.

_pool = None
_pool_token: tuple[bytes, int] | None = None
_pool_hb_dir: str | None = None

# Worker-process globals (set by _worker_init, used by the task fns).
_W: dict[str, Any] | None = None
_W_ENGINES: list | None = None
_W_PARSERS = None
_W_HB: str | None = None
_W_CHUNKS = 0


def _worker_init(blob: bytes, heartbeat_dir: str | None) -> None:
    """Pool initializer: install the run state, build one warm
    chunk-bounded stream engine per key, zero worker-local telemetry."""
    global _W, _W_ENGINES, _W_PARSERS, _W_HB, _W_CHUNKS
    _W = pickle.loads(blob)
    _W_ENGINES = [
        None if _W["mode"] == SCALAR
        else stream_engine(key, _W["chunk_size"])
        for key in _W["keys"]
    ]
    schema = _W["schema"]
    _W_PARSERS = cell_parsers(schema) if schema is not None else None
    _W_HB = heartbeat_dir
    _W_CHUNKS = 0
    # Worker-local counters must count this worker's launches only,
    # whatever the parent process had accumulated before the fork.
    kernels.reset_kernel_calls()
    beat(heartbeat_dir, state=IDLE)


def _worker_stats() -> dict[str, Any]:
    return {
        "pid": os.getpid(),
        "chunks": _W_CHUNKS,
        "kernel_calls": dict(kernels.KERNEL_CALLS),
        "computed_digests": sum(
            engine.computed_digests
            for engine in _W_ENGINES
            if engine is not None
        ),
    }


def _misbehave(inject: tuple | None, index: int) -> None:
    """Execute a parent-planned fault shipped across the process
    boundary (the armed :class:`~repro.reliability.FaultPlan` lives in
    the parent; the trigger was consumed at submit time, so a retried
    task runs clean — same pattern as the sweep pool)."""
    if inject is None:
        return
    kind, param = inject
    if kind == KILL:
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover — fatal
    if kind == HANG:
        time.sleep(param)
        raise InjectedFaultError("pool.worker", index, kind)
    if kind == SLOW:
        time.sleep(param)
        return
    if kind == MEMORY:
        raise MemoryError(f"injected memory fault at pool.worker[{index}]")
    raise InjectedFaultError("pool.worker", index, kind)


def _worker_chunk(task: ChunkTask) -> Table:
    return _build_chunk(
        task, _W["schema"], _W["name"], _W["path"], _W["infer"],
        _W["trusted"], _W_PARSERS,
    )


def _task_votes(task: ChunkTask, inject: tuple | None = None):
    """Pool task: one chunk's per-pass slot-vote tallies — exactly the
    tallies the serial per-chunk kernels produce."""
    global _W_CHUNKS
    beat(_W_HB)
    try:
        _misbehave(inject, task.index)
        chunk = _worker_chunk(task)
        spec = _W["spec"]
        domain = _W["domain"]
        if domain is None:
            domain = chunk.schema.attribute(spec.mark_attribute).domain
        keys = _W["keys"]
        maps = _W["maps"]
        mode = _W["mode"]
        value_mapping = _W["value_mapping"]
        if len(keys) > 1 and _vector_chunk(mode, chunk):
            tallies = [
                SlotVotes.from_arrays(*tally)
                for tally in kernels.detect_multipass_votes(
                    [chunk] * len(keys),
                    spec,
                    [domain] * len(keys),
                    maps if spec.variant == VARIANT_MAP else None,
                    value_mapping,
                    _W_ENGINES,
                )
            ]
        else:
            tallies = [
                _chunk_votes(
                    chunk, key, spec, embedding_map, domain, value_mapping,
                    engine, mode,
                )
                for key, engine, embedding_map in zip(
                    keys, _W_ENGINES, maps
                )
            ]
        _W_CHUNKS += 1
        return tallies, len(chunk), _worker_stats()
    finally:
        beat(_W_HB, state=IDLE)


def _task_embed(task: ChunkTask, inject: tuple | None = None):
    """Pool task: embed one chunk in place; returns the marked rows plus
    the per-chunk embedding/guard reports for the ordered commit."""
    global _W_CHUNKS
    from .pipeline import _embed_one

    beat(_W_HB)
    try:
        _misbehave(inject, task.index)
        chunk = _worker_chunk(task)
        spec = _W["spec"]
        domain = _W["domain"]
        chunk_domain = chunk.schema.attribute(spec.mark_attribute).domain
        if chunk_domain != domain:
            raise StreamError(
                "chunk domain drifted from the declared domain — "
                "stream_mark sources must be built with "
                "infer_domains=False"
            )
        guard = QualityGuard([])
        guard.bind(chunk)
        pass_result = _embed_one(
            chunk, _W["watermark"], _W["keys"][0], spec, domain,
            _W["wm_data"], guard, _W_ENGINES[0], _W["mode"],
        )
        _W_CHUNKS += 1
        return (
            list(iter(chunk)), pass_result, guard.report, len(chunk),
            _worker_stats(),
        )
    finally:
        beat(_W_HB, state=IDLE)


def _ensure_pool(blob: bytes, workers: int):
    """The persistent executor for this run state (created or reused).

    A different run state (other keys, spec, domain, chunk size) retires
    the old pool: worker engines are only warm for the state their
    initializer installed.
    """
    global _pool, _pool_token, _pool_hb_dir
    token = (hashlib.sha256(blob).digest(), workers)
    if _pool is not None and _pool_token == token:
        return _pool
    shutdown_stream_pool()
    from concurrent.futures import ProcessPoolExecutor

    _pool_hb_dir = tempfile.mkdtemp(prefix="stream-heartbeat-")
    _pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(blob, _pool_hb_dir),
    )
    _pool_token = token
    return _pool


def shutdown_stream_pool() -> None:
    """Retire the persistent stream pool (test isolation, run-state
    change, interpreter exit)."""
    global _pool, _pool_token, _pool_hb_dir
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
    if _pool_hb_dir is not None:
        shutil.rmtree(_pool_hb_dir, ignore_errors=True)
    _pool = None
    _pool_token = None
    _pool_hb_dir = None


def _pool_worker_pids() -> list[int]:
    if _pool is None:
        return []
    return list((getattr(_pool, "_processes", None) or {}).keys())


def _kill_pool_workers() -> int:
    """``SIGKILL`` every live pool worker (``Executor.shutdown`` *joins*
    workers, so a hung one would outlive a plain shutdown)."""
    killed = 0
    for pid in _pool_worker_pids():
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            continue
        killed += 1
    return killed


def _planned_injection(index: int) -> tuple | None:
    """Consume a parent-armed ``"pool.worker"`` trigger at submit time
    and ship it into the task — workers run in other processes, where
    the armed plan cannot reach."""
    plan = active_plan()
    if plan is None or not plan.scheduled("pool.worker", index):
        return None
    kind = plan.draw("pool.worker", index)
    if kind == HANG:
        return (kind, plan.hang_seconds)
    if kind == SLOW:
        return (kind, plan.slow_seconds)
    return (kind, 0.0)


def _failed_future(exc: BaseException):
    from concurrent.futures import Future

    future = Future()
    future.set_exception(exc)
    return future


def _tasks_with_retry(
    source,
    start: int,
    policy: RetryPolicy | None,
    report: ReliabilityReport,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[ChunkTask]:
    """Payload tasks of ``source``, re-opening on transient read failures
    (the payload twin of the serial ``_chunks_with_retry``).

    The read-ahead window holds already-yielded tasks in memory, so a
    re-open at the reader's position never loses or duplicates a chunk.
    """
    if policy is None or not hasattr(source, "chunks"):
        yield from payload_chunks(source, start)
        return
    position = start
    attempt = 0
    iterator = payload_chunks(source, position)
    while True:
        try:
            task = next(iterator)
        except StopIteration:
            return
        except TRANSIENT_TYPES as exc:
            if classify(exc) is not TRANSIENT:
                raise
            attempt += 1
            if attempt >= policy.max_attempts:
                raise RetryError("source.read", attempt) from exc
            report.record_retry("source.read", attempt, exc)
            sleep(policy.delay("source.read", attempt))
            report.source_reopens += 1
            iterator = payload_chunks(source, position)
            continue
        attempt = 0
        yield task
        position += 1


# -- the ordered coordinator ---------------------------------------------------

class _OrderedRun:
    """Bounded read-ahead dispatch with strictly ordered commit.

    ``commit(task, result)`` is only ever called with the lowest
    uncommitted chunk index — the invariant every bit-identity claim of
    this module rests on.
    """

    def __init__(
        self,
        task_fn,
        serial_fn,
        commit,
        *,
        blob: bytes,
        workers: int,
        retry: RetryPolicy | None,
        deadline: Deadline | None,
        watchdog: Watchdog | None,
        breaker: CircuitBreaker | None,
        reliability: ReliabilityReport,
        report: ParallelReport,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.task_fn = task_fn
        self.serial_fn = serial_fn
        self.commit = commit
        self.blob = blob
        self.workers = workers
        self.retry = retry
        self.deadline = deadline
        self.watchdog = watchdog
        self.breaker = breaker
        self.reliability = reliability
        self.report = report
        self.sleep = sleep
        self.window = READAHEAD_FACTOR * workers
        self.in_flight: "OrderedDict[int, list]" = OrderedDict()
        self.pool = None
        self.serial_mode = (
            breaker is not None and breaker.is_open(STREAM_PARALLEL_LABEL)
        )
        if self.serial_mode:
            self.reliability.pool_fallbacks += 1

    # -- driving loop -----------------------------------------------------------
    def run(self, tasks: Iterator[ChunkTask]) -> None:
        tasks = iter(tasks)
        exhausted = False
        while True:
            while (
                not exhausted
                and not self.serial_mode
                and len(self.in_flight) < self.window
            ):
                task = next(tasks, None)
                if task is None:
                    exhausted = True
                    break
                check_deadline(self.deadline, "pipeline.chunk", task.index)
                entry = [None, task, 0]
                self._submit(entry)
                self.in_flight[task.index] = entry
            if self.in_flight:
                self._commit_head()
                continue
            if self.serial_mode:
                task = next(tasks, None)
                if task is None:
                    return
                self._commit_serial(task)
                continue
            if exhausted:
                return

    # -- submission -------------------------------------------------------------
    def _submit(self, entry: list) -> None:
        if self.pool is None:
            self.pool = _ensure_pool(self.blob, self.workers)
        task = entry[1]
        inject = _planned_injection(task.index)
        try:
            entry[0] = self.pool.submit(self.task_fn, task, inject)
        except _pool_breakage() as exc:
            # A worker died between commits; leave a pre-failed future so
            # the ordered commit path runs its usual pool recovery.
            entry[0] = _failed_future(exc)

    # -- commits ----------------------------------------------------------------
    def _commit_serial(self, task: ChunkTask) -> None:
        check_deadline(self.deadline, "pipeline.chunk", task.index)
        self.commit(task, self.serial_fn(task))
        self.report.chunks_serial += 1
        fault_point("pipeline.chunk", task.index)

    def _commit_head(self) -> None:
        index, entry = next(iter(self.in_flight.items()))
        try:
            result = self._await(entry)
        except _pool_breakage() as exc:
            self._trip(exc)
            if self.retry is None:
                raise
            self._recover_pool(entry, exc)
            return
        except TRANSIENT_TYPES as exc:
            # Anything outside the shared transient taxonomy propagates
            # untouched (a logic error replayed is a logic error twice);
            # ``classify`` still vets members of the tuple, because some
            # carry a permanent payload (e.g. ``OSError`` + ENOSPC).
            if classify(exc) is not TRANSIENT:
                raise
            logger.warning(
                "parallel chunk %d failed with transient %r; recovering",
                entry[1].index, exc,
            )
            self._trip(exc)
            if self.retry is None:
                raise
            self._recover_task(entry, exc)
            return
        if self.breaker is not None:
            self.breaker.record_success(STREAM_PARALLEL_LABEL)
        del self.in_flight[index]
        self.commit(entry[1], result)
        self.report.chunks_parallel += 1
        fault_point("pipeline.chunk", index)

    def _await(self, entry: list):
        """Deadline-capped, watchdog-scanned wait on the head future."""
        future = entry[0]
        poll = self.watchdog.poll if self.watchdog is not None else 1.0
        from concurrent.futures import TimeoutError as FuturesTimeout

        while True:
            budget = poll
            if self.deadline is not None:
                budget = self.deadline.timeout(cap=poll)
            try:
                return future.result(timeout=budget)
            except FuturesTimeout:
                check_deadline(
                    self.deadline, "pipeline.chunk", entry[1].index
                )
                if self.watchdog is not None and _pool_hb_dir is not None:
                    killed = self.watchdog.kill_stale(
                        _pool_hb_dir, _pool_worker_pids()
                    )
                    if killed:
                        self.reliability.watchdog_kills += len(killed)

    # -- recovery ---------------------------------------------------------------
    def _trip(self, exc: BaseException) -> None:
        if self.breaker is not None:
            if self.breaker.record_failure(
                STREAM_PARALLEL_LABEL, cause=repr(exc)
            ):
                self.reliability.breaker_trips[STREAM_PARALLEL_LABEL] += 1

    def _spend_attempt(self, entry: list, exc: BaseException) -> None:
        entry[2] += 1
        if entry[2] >= self.retry.max_attempts:
            raise RetryError("pool.worker", entry[2]) from exc
        self.reliability.record_retry("pool.worker", entry[2], exc)
        self.sleep(self.retry.delay("pool.worker", entry[2]))

    def _recover_task(self, entry: list, exc: BaseException) -> None:
        """One task failed, the pool is alive: re-dispatch that chunk
        (trigger consumed at first submit — the replay runs clean)."""
        self._spend_attempt(entry, exc)
        if self.breaker is not None and self.breaker.is_open(
            STREAM_PARALLEL_LABEL
        ):
            self._degrade()
            return
        self.report.redispatches += 1
        self._submit(entry)

    def _recover_pool(self, entry: list, exc: BaseException) -> None:
        """The executor broke (a worker was SIGKILLed, or died): kill
        any stragglers, respawn, and re-dispatch every in-flight chunk
        in order — pure functions of their payloads, so the replayed run
        is bit-identical."""
        self._spend_attempt(entry, exc)
        self.reliability.pool_respawns += 1
        logger.warning(
            "stream pool broke at chunk %d (%r): respawning and "
            "re-dispatching %d in-flight chunks",
            entry[1].index, exc, len(self.in_flight),
        )
        _kill_pool_workers()
        shutdown_stream_pool()
        self.pool = None
        if self.breaker is not None and self.breaker.is_open(
            STREAM_PARALLEL_LABEL
        ):
            self._degrade()
            return
        for waiting in self.in_flight.values():
            future = waiting[0]
            if (
                future is not None
                and future.done()
                and future.exception() is None
            ):
                continue  # completed before the breakage; keep the result
            self.report.redispatches += 1
            self._submit(waiting)

    def _degrade(self) -> None:
        """The parallel -> serial bit-identical ladder: compute every
        in-flight (and all remaining) chunks in the coordinator with the
        same kernels, in the same order."""
        self.serial_mode = True
        self.reliability.pool_fallbacks += 1
        logger.warning(
            "circuit breaker open on %s: computing remaining chunks "
            "serially in the coordinator", STREAM_PARALLEL_LABEL,
        )
        entries = list(self.in_flight.values())
        self.in_flight.clear()
        for entry in entries:
            if entry[0] is not None:
                entry[0].cancel()
        for entry in entries:
            self._commit_serial(entry[1])


def _pool_breakage():
    from concurrent.futures import BrokenExecutor

    return BrokenExecutor


# -- run-state assembly --------------------------------------------------------

def _run_blob(
    profile: dict[str, Any],
    *,
    keys: Sequence[MarkKey],
    maps: Sequence[dict[Hashable, int] | None],
    spec: EmbeddingSpec,
    domain: CategoricalDomain | None,
    value_mapping: dict[Hashable, Hashable] | None,
    mode: str,
    chunk_size: int,
    watermark: Watermark | None = None,
    wm_data=None,
) -> bytes:
    state = {
        "schema": profile["schema"],
        "infer": profile["infer"],
        "trusted": profile["trusted"],
        "name": profile["name"],
        "path": profile["path"],
        "keys": list(keys),
        "maps": list(maps),
        "spec": spec,
        "domain": domain,
        "value_mapping": value_mapping,
        "mode": mode,
        "chunk_size": chunk_size,
        "watermark": watermark,
        "wm_data": wm_data,
    }
    try:
        return pickle.dumps(state)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        # The three ways pickling actually fails: a declared-unpicklable
        # object, an unsupported type (lambda, local class), or a lookup
        # that dies during __reduce__.  Anything else is a real bug in
        # run-state assembly and should surface with its own traceback.
        logger.warning(
            "run state for %s is not picklable: %r", profile["name"], exc
        )
        raise StreamError(
            f"parallel streaming needs a picklable run state: {exc}"
        ) from exc


# -- public coordinators -------------------------------------------------------

def parallel_votes(
    source,
    keys: Sequence[MarkKey],
    spec: EmbeddingSpec,
    *,
    maps: Sequence[dict[Hashable, int] | None],
    domain: CategoricalDomain | None,
    value_mapping: dict[Hashable, Hashable] | None,
    mode: str,
    chunk_size: int,
    workers: int,
    retry: RetryPolicy | None,
    deadline: Deadline | None,
    watchdog: Watchdog | None,
    breaker: CircuitBreaker | None,
    reliability: ReliabilityReport,
) -> tuple[list[VoteAccumulator], int, int, ParallelReport]:
    """Parallel streamed tallies: ``(accumulators, chunks, rows,
    report)``, with every accumulator's state bit-identical to the
    serial single-process scan."""
    from itertools import chain

    profile = payload_profile(source)
    report = ParallelReport(workers=workers)
    tasks = _tasks_with_retry(source, 0, retry, reliability)
    first = next(tasks, None)
    accumulators = [
        VoteAccumulator(spec.channel_length) for _ in keys
    ]
    if first is None:
        return accumulators, 0, 0, report
    if domain is None:
        # Schema-less iterable sources pin the canonical domain from the
        # first chunk, exactly like the serial path — resolved here,
        # before the pool forks, so every worker decodes the same way.
        if first.kind == PAYLOAD_TABLE:
            domain = first.payload.schema.attribute(
                spec.mark_attribute
            ).domain
        if domain is None:
            raise DetectionError(
                f"no categorical domain available for "
                f"{spec.mark_attribute!r}"
            )

    blob = _run_blob(
        profile, keys=keys, maps=maps, spec=spec, domain=domain,
        value_mapping=value_mapping, mode=mode, chunk_size=chunk_size,
    )

    chunks_seen = 0
    rows = 0

    def commit(task: ChunkTask, result) -> None:
        nonlocal chunks_seen, rows
        tallies, nrows, stats = result
        for accumulator, tally in zip(accumulators, tallies):
            accumulator.add(tally)
        chunks_seen += 1
        rows += nrows
        report.note(stats)

    serial_fn = _serial_votes_fn(
        profile, keys=keys, maps=maps, spec=spec, domain=domain,
        value_mapping=value_mapping, mode=mode, chunk_size=chunk_size,
        breaker=breaker, reliability=reliability,
    )
    run = _OrderedRun(
        _task_votes, serial_fn, commit,
        blob=blob, workers=workers, retry=retry, deadline=deadline,
        watchdog=watchdog, breaker=breaker, reliability=reliability,
        report=report,
    )
    run.run(chain([first], tasks))
    return accumulators, chunks_seen, rows, report


def _serial_votes_fn(
    profile: dict[str, Any],
    *,
    keys: Sequence[MarkKey],
    maps: Sequence[dict[Hashable, int] | None],
    spec: EmbeddingSpec,
    domain: CategoricalDomain,
    value_mapping: dict[Hashable, Hashable] | None,
    mode: str,
    chunk_size: int,
    breaker: CircuitBreaker | None,
    reliability: ReliabilityReport,
):
    """Coordinator-side fallback compute — the degradation ladder's
    serial twin of :func:`_task_votes` (same kernels, same order, plus
    the serial path's own VECTOR -> ENGINE ladder for single-pass)."""
    engines = [
        None if mode == SCALAR else stream_engine(key, chunk_size)
        for key in keys
    ]
    schema = profile["schema"]
    parsers = cell_parsers(schema) if schema is not None else None
    state = {"mode": mode}

    def compute(task: ChunkTask):
        chunk = _build_chunk(
            task, schema, profile["name"], profile["path"],
            profile["infer"], profile["trusted"], parsers,
        )
        if len(keys) == 1:
            tallies, state["mode"] = _chunk_votes_adaptive(
                chunk, keys[0], spec, maps[0], domain, value_mapping,
                engines[0], state["mode"], task.index, None, breaker,
                reliability,
            )
        elif _vector_chunk(state["mode"], chunk):
            tallies = [
                SlotVotes.from_arrays(*tally)
                for tally in kernels.detect_multipass_votes(
                    [chunk] * len(keys),
                    spec,
                    [domain] * len(keys),
                    maps if spec.variant == VARIANT_MAP else None,
                    value_mapping,
                    engines,
                )
            ]
        else:
            tallies = [
                _chunk_votes(
                    chunk, key, spec, embedding_map, domain,
                    value_mapping, engine, state["mode"],
                )
                for key, engine, embedding_map in zip(keys, engines, maps)
            ]
        return tallies, len(chunk), None

    return compute


def parallel_mark(
    source,
    start: int,
    commit_marked,
    *,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    domain: CategoricalDomain,
    wm_data,
    mode: str,
    chunk_size: int,
    workers: int,
    retry: RetryPolicy | None,
    deadline: Deadline | None,
    watchdog: Watchdog | None,
    breaker: CircuitBreaker | None,
    reliability: ReliabilityReport,
) -> ParallelReport:
    """Parallel streamed embed: workers mark chunks, the ordered commit
    loop hands each marked chunk to ``commit_marked(index, marked,
    pass_result, guard_report, rows)`` in strict chunk order — the
    caller (``stream_mark``) writes, flushes and checkpoints exactly as
    the serial loop would, so output bytes, checkpoints and resume stay
    identical."""
    profile = payload_profile(source)
    schema = profile["schema"]
    report = ParallelReport(workers=workers)
    blob = _run_blob(
        profile, keys=[key], maps=[None], spec=spec, domain=domain,
        value_mapping=None, mode=mode, chunk_size=chunk_size,
        watermark=watermark, wm_data=wm_data,
    )

    def commit(task: ChunkTask, result) -> None:
        rows, pass_result, guard_report, nrows, stats = result
        marked = Table.from_trusted_rows(
            schema, rows, name=f"{profile['name']}[{task.index}]"
        )
        commit_marked(task.index, marked, pass_result, guard_report, nrows)
        report.note(stats)

    parsers = cell_parsers(schema) if schema is not None else None
    engine = None if mode == SCALAR else stream_engine(key, chunk_size)
    state = {"mode": mode}

    def serial_fn(task: ChunkTask):
        chunk = _build_chunk(
            task, schema, profile["name"], profile["path"],
            profile["infer"], profile["trusted"], parsers,
        )
        chunk_domain = chunk.schema.attribute(spec.mark_attribute).domain
        if chunk_domain != domain:
            raise StreamError(
                "chunk domain drifted from the declared domain — "
                "stream_mark sources must be built with "
                "infer_domains=False"
            )
        marked, pass_result, guard_report, state["mode"] = _embed_chunk(
            chunk, watermark, key, spec, domain, wm_data, None,
            engine, state["mode"], task.index, None, breaker, reliability,
        )
        return list(iter(marked)), pass_result, guard_report, len(chunk), None

    run = _OrderedRun(
        _task_embed, serial_fn, commit,
        blob=blob, workers=workers, retry=retry, deadline=deadline,
        watchdog=watchdog, breaker=breaker, reliability=reliability,
        report=report,
    )
    run.run(_tasks_with_retry(source, start, retry, reliability))
    return report
