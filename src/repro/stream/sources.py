"""Chunk sources: bounded-memory readers over on-disk relations.

A :class:`ChunkSource` turns a relation that does not fit in memory — a
CSV file (plain or gzip), a SQLite table, a synthetic ``datagen`` row
stream — into an iterator of schema-typed :class:`~repro.relational.Table`
chunks of a configurable row count.  Every chunk is a fully validated
in-memory relation, so the existing embed/detect kernels run on it
unchanged; only the *pipeline* (``repro.stream.pipeline``) knows the
chunks are windows of one larger relation.

Chunks are yielded in file order, which the streaming detector relies on:
its accumulator preserves the global first-vote tie rule by merging chunk
tallies in physical row order.

Domain handling
---------------

``infer_domains=False`` (the default) types every chunk under the
*declared* schema — the marking regime, where the canonical domain
ordering must be identical across chunks (and identical to detection
time).  ``infer_domains=True`` widens categorical domains per chunk to
whatever values the chunk contains — the suspect-data regime, where an
attacked copy may hold out-of-domain values that must load, not raise;
streamed detection then decodes against an explicitly supplied canonical
domain, so the per-chunk widening never influences a verdict.
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import sqlite3
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Any

from ..datagen import (
    item_catalogue,
    item_scan_schema,
    iter_item_scan_rows,
)
from ..relational import Schema, Table, infer_domains
from ..relational.csvio import cell_parsers, check_header, parse_row
from ..reliability.faults import fault_point
from ..reliability.integrity import IntegrityError, digest_rows
from .errors import BadRowError, StreamError

#: default rows per chunk — small enough that a chunk's Python objects
#: stay cache- and RAM-friendly, large enough to amortize kernel setup
DEFAULT_CHUNK_SIZE = 65_536

_GZIP_MAGIC = b"\x1f\x8b"


def is_gzip_path(path: str | Path) -> bool:
    """Does ``path`` hold a gzip stream?  (Magic bytes when the file
    exists, ``.gz`` suffix otherwise — so sinks can decide before the
    file does.)"""
    path = Path(path)
    if path.exists() and path.stat().st_size >= 2:
        with open(path, "rb") as probe:
            return probe.read(2) == _GZIP_MAGIC
    return path.suffix == ".gz"


def open_text(path: str | Path):
    """Open a (possibly gzip-compressed) text file for reading."""
    if is_gzip_path(path):
        return gzip.open(path, "rt", encoding="utf-8", newline="")
    return open(path, newline="", encoding="utf-8")


def build_chunk_table(
    schema: Schema,
    rows: list[tuple],
    index: int,
    name: str,
    infer: bool,
    trusted: bool,
) -> Table:
    """Assemble one chunk :class:`Table` from typed rows.

    The single chunk-materialization rule, shared by the serial sources
    and the parallel workers (which receive rows as picklable payloads
    and must type them into the *identical* table the serial path would
    build — same inference, same trust shortcut, same name).
    """
    label = f"{name}[{index}]"
    if infer:
        # Inference widens every categorical domain over exactly these
        # rows, and the cell parsers typed the scalar columns — the
        # rows are valid under the widened schema by construction.
        return Table.from_trusted_rows(
            infer_domains(schema, rows), rows, name=label
        )
    if trusted:
        return Table.from_trusted_rows(schema, rows, name=label)
    return Table(schema, rows, name=label)


#: :class:`ChunkTask` payload kinds — what a parallel worker receives
#: and how it must materialize the chunk from it
PAYLOAD_RAW = "raw"        # untyped CSV field lists (worker runs parse_row)
PAYLOAD_TYPED = "typed"    # typed row tuples (worker builds the Table)
PAYLOAD_TABLE = "table"    # a finished Table (pickled whole)


@dataclass
class ChunkTask:
    """One chunk's work unit for the parallel pipeline — picklable.

    ``payload`` holds the cheapest representation the source can produce
    without typing work: raw CSV field lists keep the expensive per-cell
    parsing *in the worker*, which is what makes parallel file detection
    scale (the coordinator then only reads records and pickles strings).
    """

    index: int
    kind: str
    payload: Any
    count: int
    #: 1-based data-row number preceding the first payload record (RAW
    #: payloads only) — keeps worker-side BadRowError messages identical
    #: to the serial reader's
    first_row_number: int = 0
    #: originating file (RAW payloads of multi-file sources) for error
    #: messages; ``None`` means the pool profile's path applies
    origin: str | None = None


class ChunkSource:
    """Iterable of schema-typed :class:`Table` chunks of one relation.

    Subclasses implement :meth:`chunks`; ``start`` skips that many whole
    chunks cheaply (raw records are consumed but never typed or
    validated), which is what checkpoint resume uses.
    """

    schema: Schema
    chunk_size: int
    name: str

    def chunks(self, start: int = 0) -> Iterator[Table]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Table]:
        return self.chunks()

    # -- shared chunk assembly -------------------------------------------------
    #: rows are schema-valid by construction (tuples of a validated
    #: table, generator output) — skip per-cell re-validation
    trusted_rows = False

    #: optional verified-read mode: a
    #: :class:`~repro.reliability.integrity.ChunkManifest` recorded at
    #: mark time; every chunk's row-content digest is recomputed and
    #: compared before the chunk is released downstream
    verify_manifest = None
    #: what to do with a mismatching chunk: ``"raise"`` aborts with
    #: :class:`~repro.reliability.integrity.IntegrityError`; ``"skip"``
    #: drops it (counted in ``corrupt_chunks``, feeding the quarantine
    #: policy's exactly-once accounting)
    on_corrupt_chunks = "raise"
    #: chunks dropped by verified-read during the most recent iteration
    corrupt_chunks = 0

    def _table(self, rows: list[tuple], index: int, infer: bool) -> Table:
        return build_chunk_table(
            self.schema, rows, index, self.name, infer, self.trusted_rows
        )

    def _admit(self, table: Table, index: int) -> bool:
        """Verified-read gate: does chunk ``index`` match the manifest?"""
        if self.verify_manifest is None:
            return True
        ok, reason = self._verify_chunk(table, index)
        if ok:
            return True
        if self.on_corrupt_chunks != CORRUPT_SKIP:
            raise IntegrityError(
                getattr(self, "path", self.name), reason, chunk=index
            )
        self.corrupt_chunks += 1
        return False

    def _verify_chunk(self, table: Table, index: int) -> tuple[bool, str]:
        """Row-content check: the default for row-canonical manifests
        (SQLite's rowid ranges, in-memory tables).  Byte-canonical file
        sources override this to hash the on-disk segment instead."""
        entries = self.verify_manifest.entries
        expected = (
            entries[index].rows_digest if index < len(entries) else None
        )
        if not expected:
            return False, "chunk has no manifest entry"
        if digest_rows(table) == expected:
            return True, ""
        return False, "row-content digest mismatch"

    def _batched(
        self, rows: Iterator[tuple], start: int, infer: bool
    ) -> Iterator[Table]:
        index = start
        while True:
            # Injection point: a chunk read failing (disk error, NFS
            # hiccup) — the pipeline's retry layer re-opens the source at
            # the last completed chunk boundary.
            fault_point("source.read", index)
            batch = list(islice(rows, self.chunk_size))
            if not batch:
                return
            table = self._table(batch, index, infer)
            if self._admit(table, index):
                yield table
            index += 1


def resolve_chunks(source, start: int = 0) -> Iterator[Table]:
    """Chunks of ``source``: a :class:`ChunkSource` or any iterable of
    :class:`Table` objects (handy for tests and in-memory pipelines).

    Plain iterables cannot skip, so ``start > 0`` — checkpoint resume —
    requires a real source.
    """
    if isinstance(source, ChunkSource) or hasattr(source, "chunks"):
        return source.chunks(start)
    if start:
        raise StreamError(
            "resuming needs a restartable ChunkSource, not a plain iterable"
        )
    return iter(source)


def source_schema(source) -> Schema | None:
    """The declared schema of ``source`` when it carries one."""
    return getattr(source, "schema", None)


def payload_profile(source) -> dict[str, Any]:
    """Source-level constants a parallel worker needs to materialize
    :class:`ChunkTask` payloads — shipped once in the pool initializer,
    never per chunk."""
    path = getattr(source, "path", None)
    return {
        "schema": source_schema(source),
        "infer": getattr(source, "infer", False),
        "trusted": getattr(source, "trusted_rows", False),
        "name": getattr(source, "name", "stream"),
        "path": str(path) if path is not None else None,
    }


def payload_chunks(source, start: int = 0) -> Iterator[ChunkTask]:
    """Chunk payloads of ``source`` for the parallel pipeline.

    Sources that implement ``payloads`` ship their cheapest
    representation (raw CSV records, typed row tuples); everything else
    — including plain iterables of tables — falls back to pickling whole
    chunk tables, which is always correct, just less overlapped.
    """
    if hasattr(source, "payloads"):
        return source.payloads(start)

    def tables() -> Iterator[ChunkTask]:
        for offset, chunk in enumerate(resolve_chunks(source, start)):
            index = start + offset
            yield ChunkTask(index, PAYLOAD_TABLE, chunk, len(chunk))

    return tables()


#: bad-row policies of :class:`CSVChunkSource`
BAD_ROWS_RAISE = "raise"
BAD_ROWS_SKIP = "skip"
BAD_ROWS_QUARANTINE = "quarantine"
BAD_ROWS_POLICIES = (BAD_ROWS_RAISE, BAD_ROWS_SKIP, BAD_ROWS_QUARANTINE)

#: verified-read policies (``on_corrupt_chunks``) of the file sources
CORRUPT_RAISE = "raise"
CORRUPT_SKIP = "skip"
CORRUPT_POLICIES = (CORRUPT_RAISE, CORRUPT_SKIP)


class CSVChunkSource(ChunkSource):
    """Chunked reader over a CSV file (gzip detected automatically).

    The file is parsed with the same typed cell parsers as
    :func:`repro.relational.read_csv`, so a relation round-trips through
    ``write_csv`` / streamed reading value-identically.  Quoted fields may
    contain delimiters and newlines.

    ``on_bad_rows`` decides what happens to a record the schema cannot
    type (wrong field count — a stray delimiter, a half-written line):

    * ``"raise"`` (default, the historical behavior) — abort with
      :class:`~repro.stream.errors.BadRowError` naming the data-row
      number;
    * ``"skip"`` — drop the record, counting it in ``bad_row_count``;
    * ``"quarantine"`` — drop it *and* append ``(row number, error, raw
      fields)`` to a CSV sidecar (``quarantine_path``, default
      ``<input>.quarantine.csv``) so no byte of input is silently lost.

    Both lossy policies count surviving rows for chunk boundaries, so a
    checkpointed resume re-applies the same policy while skipping and
    lands on identical chunks.
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        infer_domains: bool = False,
        name: str | None = None,
        on_bad_rows: str = BAD_ROWS_RAISE,
        quarantine_path: str | Path | None = None,
        verify_manifest=None,
        on_corrupt_chunks: str = CORRUPT_RAISE,
    ):
        if chunk_size <= 0:
            raise StreamError(f"chunk size must be positive, got {chunk_size}")
        if on_bad_rows not in BAD_ROWS_POLICIES:
            raise StreamError(
                f"on_bad_rows must be one of {BAD_ROWS_POLICIES}, "
                f"got {on_bad_rows!r}"
            )
        if on_corrupt_chunks not in CORRUPT_POLICIES:
            raise StreamError(
                f"on_corrupt_chunks must be one of {CORRUPT_POLICIES}, "
                f"got {on_corrupt_chunks!r}"
            )
        self.verify_manifest = verify_manifest
        self.on_corrupt_chunks = on_corrupt_chunks
        self.path = Path(path)
        self.schema = schema
        self.chunk_size = chunk_size
        self.infer = infer_domains
        self.name = name or self.path.stem
        self.on_bad_rows = on_bad_rows
        self.quarantine_path = (
            Path(quarantine_path) if quarantine_path is not None
            else self.path.with_name(self.path.name + ".quarantine.csv")
        )
        #: malformed records seen by the most recent iteration
        self.bad_row_count = 0
        #: subset of ``bad_row_count`` written to the sidecar
        self.quarantined_rows = 0
        #: subset of ``bad_row_count`` re-seen during the resume
        #: fast-forward — rows the *interrupted* run already counted (and
        #: quarantined).  Exactly-once contract: a resumed run's final
        #: ``bad_row_count`` equals an uninterrupted run's, because the
        #: sidecar is deterministically rewritten (``"w"`` mode) with the
        #: identical prefix rather than appended to, and chunk boundaries
        #: count surviving rows — the re-seen bad rows are the same
        #: physical records, not new ones.
        self.fastforward_bad_rows = 0
        self._sidecar = None
        self._sidecar_writer = None

    def chunks(self, start: int = 0) -> Iterator[Table]:
        self.bad_row_count = 0
        self.quarantined_rows = 0
        self.fastforward_bad_rows = 0
        self.corrupt_chunks = 0
        try:
            with open_text(self.path) as handle:
                reader = csv.reader(handle)
                header = next(reader, None)
                if header is None:
                    return
                check_header(header, self.schema)
                parsers = cell_parsers(self.schema)
                arity = self.schema.arity
                if self.on_bad_rows == BAD_ROWS_RAISE:
                    # Raw fast-forward on resume is sound under the raise
                    # policy only: every skipped raw record was a typed
                    # row of the interrupted run (a bad one would have
                    # aborted it before the checkpoint landed).
                    number = 0
                    for _ in range(start * self.chunk_size):
                        if next(reader, None) is None:
                            return
                        number += 1
                    typed = self._typed_rows(reader, parsers, arity, number)
                else:
                    typed = self._typed_rows(reader, parsers, arity, 0)
                    if start:
                        # Chunk boundaries count *surviving* rows, so the
                        # fast-forward must apply the same bad-row policy
                        # (re-quarantining deterministically rewrites the
                        # sidecar with identical content).
                        for _ in islice(typed, start * self.chunk_size):
                            pass
                        self.fastforward_bad_rows = self.bad_row_count
                yield from self._batched(typed, start, self.infer)
        finally:
            self._close_sidecar()

    def _typed_rows(
        self, reader, parsers, arity: int, first: int
    ) -> Iterator[tuple]:
        for number, row in enumerate(reader, start=first + 1):
            try:
                yield parse_row(row, parsers, arity, number)
            except ValueError as exc:
                if self.on_bad_rows == BAD_ROWS_RAISE:
                    raise BadRowError(self.path, number, str(exc)) from exc
                self.bad_row_count += 1
                if self.on_bad_rows == BAD_ROWS_QUARANTINE:
                    self._quarantine(number, row, exc)

    def _verify_chunk(self, table: Table, index: int) -> tuple[bool, str]:
        # CSV files are byte-canonical, so a verified read checks the
        # same thing the sink recorded and an audit would check: the
        # sha256 of the chunk's on-disk ``[start, end)`` segment (for
        # gzip, the compressed member) — cheaper than re-digesting rows
        # and sensitive to any rot, parseable or not.
        manifest = self.verify_manifest
        if manifest.kind != "bytes":
            return super()._verify_chunk(table, index)
        entries = manifest.entries
        entry = entries[index] if index < len(entries) else None
        if entry is None:
            return False, "chunk has no manifest entry"
        with open(self.path, "rb") as handle:
            handle.seek(entry.start)
            data = handle.read(entry.end - entry.start)
        if (
            len(data) == entry.end - entry.start
            and hashlib.sha256(data).hexdigest() == entry.digest
        ):
            return True, ""
        return False, "byte-segment digest mismatch"

    def payloads(self, start: int = 0) -> Iterator[ChunkTask]:
        """Chunk payloads for the parallel pipeline.

        Under the default ``raise`` policy the payload is the *raw* CSV
        field lists: typing every cell is the dominant cost of file
        decoding, and shipping it to the workers is what lets parallel
        detection beat the serial reader.  The lossy policies must count
        surviving rows for chunk boundaries (and write the quarantine
        sidecar) in one deterministic place, so they type rows here and
        ship finished chunk tables instead.  Verified-read mode takes
        the same fallback: the digest check needs the typed chunk, and
        skip-policy chunk accounting must happen exactly once.
        """
        if self.on_bad_rows != BAD_ROWS_RAISE or self.verify_manifest is not None:
            for offset, chunk in enumerate(self.chunks(start)):
                index = start + offset
                yield ChunkTask(index, PAYLOAD_TABLE, chunk, len(chunk))
            return
        self.bad_row_count = 0
        self.quarantined_rows = 0
        self.fastforward_bad_rows = 0
        with open_text(self.path) as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                return
            check_header(header, self.schema)
            number = 0
            for _ in range(start * self.chunk_size):
                if next(reader, None) is None:
                    return
                number += 1
            index = start
            while True:
                fault_point("source.read", index)
                batch = list(islice(reader, self.chunk_size))
                if not batch:
                    return
                yield ChunkTask(
                    index, PAYLOAD_RAW, batch, len(batch),
                    first_row_number=number, origin=str(self.path),
                )
                number += len(batch)
                index += 1

    def _quarantine(self, number: int, row: list, exc: Exception) -> None:
        if self._sidecar is None:
            self._sidecar = open(
                self.quarantine_path, "w", newline="", encoding="utf-8"
            )
            self._sidecar_writer = csv.writer(self._sidecar)
            self._sidecar_writer.writerow(["row_number", "error", "fields"])
        self._sidecar_writer.writerow([number, str(exc), *row])
        self.quarantined_rows += 1

    def _close_sidecar(self) -> None:
        if self._sidecar is not None:
            self._sidecar.close()
            self._sidecar = None
            self._sidecar_writer = None


def _quote_identifier(name: str) -> str:
    """SQL-quote ``name`` for SQLite (doubles embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def resolve_sqlite_table(path: str | Path, preferred: str | None) -> str:
    """The table to read from a SQLite database.

    ``preferred`` (when given) is used verbatim — a typo'd explicit name
    must fail loudly in SQL, not silently fall back to a different
    table.  Without a preference, the sink's default name ``relation``
    wins when present, a single-table database names itself, and
    anything ambiguous raises.
    """
    if preferred is not None:
        return preferred
    connection = sqlite3.connect(path)
    try:
        tables = [
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "ORDER BY name"
            )
        ]
    finally:
        connection.close()
    if "relation" in tables:
        return "relation"
    if len(tables) == 1:
        return tables[0]
    raise StreamError(
        f"cannot pick a table in {path}: found {tables!r}; pass table="
    )


class SQLiteChunkSource(ChunkSource):
    """Chunked reader over one table of a SQLite database.

    Rows are read in ``rowid`` order — insertion order, the database's
    physical row order — via ``fetchmany``, so only one chunk of cursor
    results is materialized at a time.  SQLite returns natively typed
    values (int/float/str/bytes), which are validated against the schema
    per chunk exactly like CSV cells.  ``table=None`` (the default)
    auto-resolves via :func:`resolve_sqlite_table`.
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema,
        table: str | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        infer_domains: bool = False,
        name: str | None = None,
        verify_manifest=None,
        on_corrupt_chunks: str = CORRUPT_RAISE,
    ):
        if chunk_size <= 0:
            raise StreamError(f"chunk size must be positive, got {chunk_size}")
        if on_corrupt_chunks not in CORRUPT_POLICIES:
            raise StreamError(
                f"on_corrupt_chunks must be one of {CORRUPT_POLICIES}, "
                f"got {on_corrupt_chunks!r}"
            )
        self.path = Path(path)
        self.schema = schema
        self.table = table
        self.chunk_size = chunk_size
        self.infer = infer_domains
        self.name = name or table or self.path.stem
        self.verify_manifest = verify_manifest
        self.on_corrupt_chunks = on_corrupt_chunks

    def chunks(self, start: int = 0) -> Iterator[Table]:
        table = resolve_sqlite_table(self.path, self.table)
        self.corrupt_chunks = 0
        connection = sqlite3.connect(self.path)
        try:
            columns = ", ".join(
                _quote_identifier(column) for column in self.schema.names
            )
            cursor = connection.execute(
                f"SELECT {columns} FROM {_quote_identifier(table)} "
                f"ORDER BY rowid LIMIT -1 OFFSET ?",
                (start * self.chunk_size,),
            )
            index = start
            while True:
                batch = cursor.fetchmany(self.chunk_size)
                if not batch:
                    return
                chunk = self._table(
                    [tuple(row) for row in batch], index, self.infer
                )
                if self._admit(chunk, index):
                    yield chunk
                index += 1
        finally:
            connection.close()

    def payloads(self, start: int = 0) -> Iterator[ChunkTask]:
        """Typed-row payloads: SQLite already typed the values, so the
        workers only validate and build (``trusted`` is False — the
        database enforces affinity, not the declared schema).
        Verified-read mode ships finished chunk tables instead, so the
        digest check and skip accounting happen exactly once, here."""
        if self.verify_manifest is not None:
            for offset, chunk in enumerate(self.chunks(start)):
                yield ChunkTask(
                    start + offset, PAYLOAD_TABLE, chunk, len(chunk)
                )
            return
        table = resolve_sqlite_table(self.path, self.table)
        connection = sqlite3.connect(self.path)
        try:
            columns = ", ".join(
                _quote_identifier(column) for column in self.schema.names
            )
            cursor = connection.execute(
                f"SELECT {columns} FROM {_quote_identifier(table)} "
                f"ORDER BY rowid LIMIT -1 OFFSET ?",
                (start * self.chunk_size,),
            )
            index = start
            while True:
                batch = cursor.fetchmany(self.chunk_size)
                if not batch:
                    return
                rows = [tuple(row) for row in batch]
                yield ChunkTask(index, PAYLOAD_TYPED, rows, len(rows))
                index += 1
        finally:
            connection.close()


class SyntheticChunkSource(ChunkSource):
    """Chunked view over a restartable ``datagen`` row stream.

    ``rows_factory`` must return a *fresh* iterator of rows on every call
    (the lazy ``iter_*_rows`` generators of :mod:`repro.datagen` qualify):
    that is what makes the source re-iterable and resumable — a skip is a
    deterministic fast-forward through the same pseudo-random stream.
    Rows must be schema-valid; they are adopted without per-cell
    validation (the generators draw from the schema's own domains).
    """

    trusted_rows = True

    def __init__(
        self,
        schema: Schema,
        rows_factory: Callable[[], Iterable[tuple]],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: str = "synthetic",
    ):
        if chunk_size <= 0:
            raise StreamError(f"chunk size must be positive, got {chunk_size}")
        self.schema = schema
        self.rows_factory = rows_factory
        self.chunk_size = chunk_size
        self.name = name

    def chunks(self, start: int = 0) -> Iterator[Table]:
        rows = iter(self.rows_factory())
        if start:
            for _ in islice(rows, start * self.chunk_size):
                pass
        yield from self._batched(rows, start, infer=False)

    def payloads(self, start: int = 0) -> Iterator[ChunkTask]:
        """Typed trusted-row payloads (the generators draw from the
        schema's own domains, exactly like the serial adoption path)."""
        rows = iter(self.rows_factory())
        if start:
            for _ in islice(rows, start * self.chunk_size):
                pass
        index = start
        while True:
            fault_point("source.read", index)
            batch = list(islice(rows, self.chunk_size))
            if not batch:
                return
            yield ChunkTask(index, PAYLOAD_TYPED, batch, len(batch))
            index += 1


def item_scan_source(
    tuple_count: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    item_count: int = 500,
    zipf_exponent: float = 1.05,
    seed: int | str = 0,
) -> SyntheticChunkSource:
    """A synthetic ``ItemScan`` stream of ``tuple_count`` rows.

    The million-row bench substrate: paper-shaped data with O(chunk)
    memory however large ``tuple_count`` grows.
    """
    schema = item_scan_schema(item_catalogue(item_count))
    return SyntheticChunkSource(
        schema,
        lambda: iter_item_scan_rows(
            tuple_count, item_count, zipf_exponent, seed
        ),
        chunk_size=chunk_size,
        name="ItemScanStream",
    )


class TableChunkSource(ChunkSource):
    """Chunked view over an in-memory :class:`Table`.

    The equivalence-test (and overhead-measurement) source: streaming a
    table through chunks of any size must reproduce the in-memory verdict
    bit for bit.  Chunks are :meth:`Table.take` windows — copy-on-write
    row sharing, no re-validation, and any fresh cached factorization of
    the base column arrives as a gather — so the source measures the
    *pipeline's* overhead, not redundant row copying.
    """

    #: rows of a validated Table are schema-valid by construction, so
    #: parallel workers may adopt them without per-cell re-validation
    trusted_rows = True

    def __init__(
        self,
        table: Table,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: str | None = None,
    ):
        if chunk_size <= 0:
            raise StreamError(f"chunk size must be positive, got {chunk_size}")
        self.table = table
        self.schema = table.schema
        self.chunk_size = chunk_size
        self.name = name or table.name

    def chunks(self, start: int = 0) -> Iterator[Table]:
        total = len(self.table)
        index = start
        for begin in range(start * self.chunk_size, total, self.chunk_size):
            # Same injection surface as the file-backed sources: chaos
            # scenarios address "source.read" whatever the source type.
            fault_point("source.read", index)
            yield self.table.take(
                range(begin, min(begin + self.chunk_size, total)),
                name=f"{self.name}[{index}]",
            )
            index += 1

    def payloads(self, start: int = 0) -> Iterator[ChunkTask]:
        total = len(self.table)
        index = start
        for begin in range(start * self.chunk_size, total, self.chunk_size):
            fault_point("source.read", index)
            window = self.table.take(
                range(begin, min(begin + self.chunk_size, total))
            )
            rows = list(iter(window))
            yield ChunkTask(index, PAYLOAD_TYPED, rows, len(rows))
            index += 1


class MultiFileChunkSource(ChunkSource):
    """Concatenation of several same-schema sources — multi-file inputs.

    Chunks keep each file's own boundaries (the last chunk of every file
    may be ragged) and global chunk indices run file by file in the given
    order, so the parallel pipeline fans files across workers while the
    strictly ordered accumulator merge preserves the global row order:
    the verdict is bit-identical to an in-memory verify over the files'
    concatenated rows.

    All children must share one declared schema and the same typing rules
    (``infer_domains``, trusted rows) — the parallel workers materialize
    every file's payloads under a single shipped profile.  Resume-style
    skips (``start > 0``) decode and discard the skipped files' records;
    checkpointed embeds over huge multi-file inputs should prefer one
    run per file.
    """

    def __init__(self, sources, name: str | None = None):
        sources = list(sources)
        if not sources:
            raise StreamError(
                "MultiFileChunkSource needs at least one source"
            )
        first = sources[0]
        schema = source_schema(first)
        if schema is None:
            raise StreamError(
                "MultiFileChunkSource needs schema-carrying sources"
            )
        infer = getattr(first, "infer", False)
        trusted = getattr(first, "trusted_rows", False)
        for other in sources[1:]:
            if source_schema(other) != schema:
                raise StreamError(
                    "all sources of a MultiFileChunkSource must share "
                    "one declared schema"
                )
            if (
                getattr(other, "infer", False) != infer
                or getattr(other, "trusted_rows", False) != trusted
            ):
                raise StreamError(
                    "all sources of a MultiFileChunkSource must share "
                    "the same infer_domains / trusted-row typing rules"
                )
        self.sources = sources
        self.schema = schema
        self.infer = infer
        self.trusted_rows = trusted
        self.chunk_size = max(
            getattr(source, "chunk_size", DEFAULT_CHUNK_SIZE)
            for source in sources
        )
        self.name = name or "+".join(
            getattr(source, "name", "stream") for source in sources
        )

    def chunks(self, start: int = 0) -> Iterator[Table]:
        index = 0
        for source in self.sources:
            for chunk in source.chunks():
                if index >= start:
                    yield chunk
                index += 1

    def payloads(self, start: int = 0) -> Iterator[ChunkTask]:
        index = 0
        for source in self.sources:
            origin = getattr(source, "path", None)
            for task in payload_chunks(source):
                if index >= start:
                    yield ChunkTask(
                        index, task.kind, task.payload, task.count,
                        first_row_number=task.first_row_number,
                        origin=task.origin
                        or (str(origin) if origin is not None else None),
                    )
                index += 1

    # Aggregated bad-row telemetry (the pipeline reads these attributes
    # off whatever source it was handed).
    @property
    def bad_row_count(self) -> int:
        return sum(
            getattr(source, "bad_row_count", 0) for source in self.sources
        )

    @property
    def quarantined_rows(self) -> int:
        return sum(
            getattr(source, "quarantined_rows", 0) for source in self.sources
        )


def open_source(
    path: str | Path,
    schema: Schema,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    infer_domains: bool = False,
    table: str | None = None,
    on_bad_rows: str = BAD_ROWS_RAISE,
) -> ChunkSource:
    """A chunk source for ``path`` picked by file type.

    SQLite databases (by suffix ``.sqlite`` / ``.sqlite3`` / ``.db``, or
    by magic when the file exists) get a :class:`SQLiteChunkSource`;
    everything else is treated as CSV (gzip detected automatically).
    ``on_bad_rows`` is the CSV malformed-record policy; SQLite rows are
    already typed by the database, so any non-default policy there is a
    configuration error.
    """
    path = Path(path)
    if _is_sqlite_path(path):
        if on_bad_rows != BAD_ROWS_RAISE:
            raise StreamError(
                "on_bad_rows applies to CSV sources only (SQLite rows "
                "are already typed)"
            )
        return SQLiteChunkSource(
            path, schema, table=table, chunk_size=chunk_size,
            infer_domains=infer_domains,
        )
    return CSVChunkSource(
        path, schema, chunk_size=chunk_size, infer_domains=infer_domains,
        on_bad_rows=on_bad_rows,
    )


def open_sources(
    paths,
    schema: Schema,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    infer_domains: bool = False,
    table: str | None = None,
    on_bad_rows: str = BAD_ROWS_RAISE,
) -> ChunkSource:
    """One chunk source over ``paths``: a plain :func:`open_source` for a
    single path, a :class:`MultiFileChunkSource` concatenation for
    several (the CLI's repeated ``--input``)."""
    paths = [paths] if isinstance(paths, (str, Path)) else list(paths)
    sources = [
        open_source(
            path, schema, chunk_size=chunk_size,
            infer_domains=infer_domains, table=table,
            on_bad_rows=on_bad_rows,
        )
        for path in paths
    ]
    if len(sources) == 1:
        return sources[0]
    return MultiFileChunkSource(sources)


_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}
_SQLITE_MAGIC = b"SQLite format 3\x00"


def _is_sqlite_path(path: Path) -> bool:
    if path.exists() and path.stat().st_size >= len(_SQLITE_MAGIC):
        with open(path, "rb") as probe:
            return probe.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    return path.suffix in _SQLITE_SUFFIXES


def count_data_rows(path: str | Path, table: str | None = None) -> int:
    """Number of data rows in a file without typing a single cell.

    Used by the CLI to fill in the paper's nominal channel length
    (``max(|wm|, N/e)``) for a file-mode embed, where the relation is
    never whole in memory.  CSV records are counted with the csv module
    (quoted embedded newlines are one record, not two); SQLite asks the
    database — the same table :class:`SQLiteChunkSource` would read.
    """
    path = Path(path)
    if _is_sqlite_path(path):
        resolved = resolve_sqlite_table(path, table)
        connection = sqlite3.connect(path)
        try:
            return connection.execute(
                f"SELECT COUNT(*) FROM {_quote_identifier(resolved)}"
            ).fetchone()[0]
        finally:
            connection.close()
    with open_text(path) as handle:
        reader = csv.reader(handle)
        if next(reader, None) is None:
            return 0
        return sum(1 for _ in reader)
