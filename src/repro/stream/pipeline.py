"""Streaming mark/detect pipelines: the out-of-core execution layer.

The paper's scheme decides every embedding and detection action from a
keyed hash of the tuple's (primary-key) value alone, so both directions
are embarrassingly chunkable:

* :func:`stream_mark` pulls schema-typed chunks from a
  :class:`~repro.stream.sources.ChunkSource`, runs the existing embed
  kernels on each chunk (the NumPy vector kernel for large chunks, on one
  warm stream-scoped :class:`~repro.crypto.HashEngine`), and pushes the
  marked chunks into a :class:`~repro.stream.sinks.ChunkSink` — with an
  optional checkpoint file making the run resumable after interruption;
* :func:`stream_verify` / :func:`stream_verify_multipass` keep running
  per-slot vote accumulators (:class:`~repro.core.VoteAccumulator`) that
  merge each chunk's bincount tallies associatively, preserving the
  global first-vote tie rule — streamed detection over an arbitrarily
  large file uses O(chunk + channel length) memory and is bit-identical
  to the in-memory :func:`~repro.core.verify` on the concatenated rows.

Memory discipline: the stream-scoped engine bounds its memoization caches
relative to the chunk size (fresh key values arrive forever; an unbounded
digest cache would silently grow O(rows)), per-chunk guards die with
their chunk (no cross-chunk rollback log), and the vector plan arrays are
weak-keyed per chunk factorization, so they are reclaimed with the chunk.
Within one process the engine stays warm across chunks *and* across a
mark-then-verify pair — re-seeing a value re-hashes nothing.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..core import kernels
from ..core.detection import (
    DEFAULT_SIGNIFICANCE,
    DetectionResult,
    SlotVotes,
    VerificationResult,
    VoteAccumulator,
    _assemble_verification,
    extract_slot_votes,
)
from ..core.embedding import (
    EmbeddingResult,
    EmbeddingSpec,
    VARIANT_KEYED,
    VARIANT_MAP,
    embed,
    value_pair_count,
)
from ..core.errors import DetectionError, SpecError
from ..core.watermark import Watermark
from ..crypto import AUTO, BACKENDS, SCALAR, VECTOR, HashEngine, MarkKey
from ..quality import GuardReport, QualityGuard
from ..relational import CategoricalDomain, Schema, Table
from ..reliability.faults import fault_point
from ..reliability.report import ReliabilityReport
from ..reliability.retry import (
    TRANSIENT,
    RetryError,
    RetryPolicy,
    call_with_retry,
    classify,
)
from .checkpoint import (
    MarkCheckpoint,
    load_verified_checkpoint,
    mark_fingerprint,
    save_checkpoint,
)
from .errors import CheckpointError, StreamError
from .sinks import ChunkSink
from .sources import DEFAULT_CHUNK_SIZE, resolve_chunks, source_schema

#: floor on the stream engine's memoization-cache entry bound; the bound
#: scales with the chunk size (see :func:`stream_engine`) so steady-state
#: memory is O(chunk), not O(rows seen)
MIN_ENGINE_ENTRIES = 8_192

#: cache-entry bound as a multiple of the chunk size — large enough that
#: a mark-then-verify pair (or repeated values across nearby chunks)
#: stays warm, small enough to stay chunk-proportional
ENGINE_ENTRY_FACTOR = 4


def stream_engine(
    key: MarkKey, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> HashEngine:
    """A stream-scoped :class:`HashEngine` with chunk-bounded caches.

    Unlike the process-wide :func:`~repro.crypto.get_engine` registry
    engine (bounded at millions of entries — fine for in-memory
    relations, O(rows) for an unbounded stream), this engine's digest and
    derived caches are capped at ``max(MIN_ENGINE_ENTRIES,
    ENGINE_ENTRY_FACTOR * chunk_size)`` entries — dropped wholesale when
    the cap is crossed, so steady-state memory stays O(chunk) however
    many rows flow past, while values re-seen within the window (a
    mark-then-verify pair, repeated chunks) still re-hash nothing.
    """
    return HashEngine(
        key,
        max_entries=max(MIN_ENGINE_ENTRIES, ENGINE_ENTRY_FACTOR * chunk_size),
    )


def _resolve_stream_backend(
    backend: HashEngine | str | None,
    key: MarkKey,
    chunk_size: int,
) -> tuple[HashEngine | None, str]:
    """Normalize a ``backend=`` parameter to ``(engine, mode)``.

    ``mode`` is one of the :data:`~repro.crypto.BACKENDS` sentinels;
    ``engine`` is the stream-scoped (or caller-supplied) instance every
    non-SCALAR chunk runs on.  An explicit :class:`HashEngine` instance
    keeps AUTO dispatch — unlike the in-memory entry points, the pipeline
    can drive the vector kernels with any engine, so callers may pass a
    differently-bounded (or shared, pre-warmed) instance without giving
    up the fast path.
    """
    if isinstance(backend, HashEngine):
        if backend.key != key:
            raise StreamError(
                "backend engine was built for a different MarkKey"
            )
        return backend, AUTO
    if backend is None:
        backend = AUTO
    if backend not in BACKENDS:
        raise StreamError(
            f"backend must be one of {BACKENDS} or a HashEngine, "
            f"got {backend!r}"
        )
    if backend == VECTOR and not kernels.numpy_available():
        raise StreamError("the VECTOR backend requires numpy")
    if backend == SCALAR:
        return None, SCALAR
    return stream_engine(key, chunk_size), backend


def _vector_chunk(mode: str, chunk: Table) -> bool:
    """Should this chunk run on the vector kernels under ``mode``?"""
    if mode == VECTOR:
        return True
    if mode == AUTO:
        return (
            kernels.numpy_available()
            and len(chunk) >= kernels.VECTOR_MIN_ROWS
        )
    return False  # SCALAR and ENGINE force their historical paths


def _source_chunk_size(source) -> int:
    return getattr(source, "chunk_size", DEFAULT_CHUNK_SIZE)


def _chunks_with_retry(
    source,
    start: int,
    policy: RetryPolicy | None,
    report: ReliabilityReport,
    sleep: Callable[[float], None] = time.sleep,
):
    """Chunks of ``source`` from ``start``, re-opening on transient read
    failures.

    A failed read never loses a chunk: the source is re-opened at the
    last *completed* chunk boundary (chunks are only counted once they
    have been fully yielded downstream), so a retried read re-produces
    the exact chunk whose read failed.  Attempts are bounded per
    position; plain iterables cannot be re-opened and propagate their
    failures unchanged.
    """
    if policy is None or not hasattr(source, "chunks"):
        yield from resolve_chunks(source, start)
        return
    position = start
    attempt = 0
    iterator = resolve_chunks(source, position)
    while True:
        try:
            chunk = next(iterator)
        except StopIteration:
            return
        except Exception as exc:
            if classify(exc) is not TRANSIENT:
                raise
            attempt += 1
            if attempt >= policy.max_attempts:
                raise RetryError("source.read", attempt) from exc
            report.record_retry("source.read", attempt, exc)
            sleep(policy.delay("source.read", attempt))
            report.source_reopens += 1
            iterator = resolve_chunks(source, position)
            continue
        attempt = 0
        yield chunk
        position += 1


# -- streaming embed -----------------------------------------------------------

@dataclass
class StreamMarkResult:
    """Merged report of a (possibly resumed) streaming embed."""

    spec: EmbeddingSpec
    chunks: int
    rows: int
    fit_count: int
    applied: int
    vetoed: int
    unchanged: int
    slots_written: set[int] = field(default_factory=set)
    guard_report: GuardReport = field(default_factory=GuardReport)
    resumed_at_chunk: int = 0
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)

    @property
    def slot_coverage(self) -> float:
        """Fraction of ``wm_data`` slots carried by at least one tuple."""
        if self.spec.channel_length == 0:
            return 0.0
        return len(self.slots_written) / self.spec.channel_length

    @property
    def alteration_fraction(self) -> float:
        """Fraction of fit carriers whose value actually changed."""
        if self.fit_count == 0:
            return 0.0
        return self.applied / self.fit_count


def _validate_mark_inputs(
    schema: Schema, watermark: Watermark, spec: EmbeddingSpec
) -> CategoricalDomain:
    """Schema-level validation of a streaming embed (no table in memory)."""
    if spec.variant != VARIANT_KEYED:
        raise StreamError(
            "stream_mark supports the fully blind 'keyed' variant only: "
            "the 'map' variant must remember one embedding-map entry per "
            "carrier, which contradicts bounded-memory streaming — use "
            "the in-memory embed for map-variant relations"
        )
    if len(watermark) != spec.watermark_length:
        raise SpecError(
            f"watermark has {len(watermark)} bits, spec says "
            f"{spec.watermark_length}"
        )
    attribute = schema.attribute(spec.mark_attribute)
    if not attribute.is_categorical or attribute.domain is None:
        raise SpecError(
            f"mark attribute {spec.mark_attribute!r} is not categorical"
        )
    if value_pair_count(attribute.domain) == 0:
        raise SpecError(
            f"attribute {spec.mark_attribute!r} has a single-value domain; "
            f"no embedding bandwidth"
        )
    schema.position(spec.key_attribute)  # raises if unknown
    return attribute.domain


def stream_mark(
    source,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    sink: ChunkSink,
    *,
    backend: HashEngine | str | None = None,
    checkpoint_path=None,
    resume: bool = False,
    constraints_factory: Callable[[], list] | None = None,
    retry: RetryPolicy | None = None,
) -> StreamMarkResult:
    """Embed ``watermark`` into a streamed relation, chunk by chunk.

    Each chunk runs through the existing embed kernels (vector kernel for
    large chunks) on one warm stream-scoped engine; marked chunks land in
    ``sink`` and the per-chunk guard logs/reports are merged into the
    returned :class:`StreamMarkResult`.  Because every decision is a pure
    function of ``(key, tuple key value)``, the concatenated sink output
    is cell-identical to an in-memory embed of the whole relation.

    With ``checkpoint_path`` the pipeline flushes the sink and atomically
    records progress after every chunk; ``resume=True`` picks up from the
    last record (verifying, via a keyless fingerprint, that key, spec and
    watermark match the interrupted run) and produces output identical to
    an uninterrupted run.

    ``constraints_factory`` builds a fresh constraint list per chunk
    (constraints are stateful, so instances cannot be shared across
    chunks); note that guard budgets therefore apply *per chunk*, not to
    the relation as a whole.

    The source must present the canonical declared domain on every chunk
    (``infer_domains=False``); marking under per-chunk inferred domains
    would embed against inconsistent value orderings.

    A ``retry`` policy arms the recovery layer: transient failures of
    source reads (re-open at the failed chunk boundary), sink writes
    (roll back to the last durable marker, rewrite the chunk) and
    checkpoint saves are retried with deterministic backoff, and every
    recovery action is counted in ``result.reliability``.  ``retry=None``
    (the default) keeps the historical fail-fast behavior.  Resume always
    prefers the newest checkpoint that passes CRC verification, falling
    back to the rotated ``.prev`` record when the newest is corrupt.
    """
    schema = source_schema(source)
    if schema is None:
        raise StreamError(
            "stream_mark needs a schema-carrying ChunkSource "
            "(CSV/SQLite/synthetic), not a plain iterable"
        )
    domain = _validate_mark_inputs(schema, watermark, spec)
    chunk_size = _source_chunk_size(source)
    engine, mode = _resolve_stream_backend(backend, key, chunk_size)
    wm_data = spec.ecc().encode(watermark.bits, spec.channel_length)

    result = StreamMarkResult(
        spec=spec, chunks=0, rows=0, fit_count=0, applied=0, vetoed=0,
        unchanged=0,
    )
    fingerprint = mark_fingerprint(key, spec, watermark)
    reliability = result.reliability
    start = 0
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume=True needs a checkpoint_path")
        checkpoint, rolled_back = load_verified_checkpoint(checkpoint_path)
        if checkpoint is None:
            raise CheckpointError(
                f"no checkpoint to resume from at {checkpoint_path}"
            )
        if rolled_back:
            reliability.checkpoint_rollbacks += 1
        if checkpoint.fingerprint != fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different (key, spec, watermark) "
                "run — refusing to resume into a half-marked relation"
            )
        start = checkpoint.chunks_done
        _restore_result(result, checkpoint)
        sink.restore(schema, checkpoint.sink_state)
    else:
        sink.open(schema)

    # The durable marker the retry layer rolls the sink back to before
    # rewriting a chunk whose write failed mid-way.
    last_good = sink.flush_state() if retry is not None else None

    try:
        for chunk in _chunks_with_retry(source, start, retry, reliability):
            chunk_domain = chunk.schema.attribute(spec.mark_attribute).domain
            if chunk_domain != domain:
                raise StreamError(
                    "chunk domain drifted from the declared domain — "
                    "stream_mark sources must be built with "
                    "infer_domains=False"
                )
            guard = QualityGuard(
                list(constraints_factory()) if constraints_factory else []
            )
            guard.bind(chunk)
            if _vector_chunk(mode, chunk):
                pass_result = EmbeddingResult(
                    spec=spec, fit_count=0, applied=0, vetoed=0, unchanged=0,
                )
                kernels.embed_vector(
                    chunk, spec, domain, wm_data, guard, pass_result, engine
                )
            else:
                pass_result = embed(
                    chunk,
                    watermark,
                    key,
                    spec,
                    guard=guard,
                    engine=SCALAR if mode == SCALAR else engine,
                )
            _merge_result(result, pass_result, guard.report, len(chunk))
            index = start + result.chunks - 1  # global chunk index

            if retry is None:
                sink.write_chunk(chunk)
                state = (
                    sink.flush_state() if checkpoint_path is not None
                    else None
                )
            else:
                def _write():
                    sink.write_chunk(chunk)
                    return sink.flush_state()

                def _rollback():
                    reliability.sink_rollbacks += 1
                    sink.restore(schema, last_good)

                state = call_with_retry(
                    _write, "sink.write", retry,
                    recover=_rollback, on_retry=reliability.record_retry,
                )
                last_good = state

            if checkpoint_path is not None:
                def _save():
                    save_checkpoint(
                        checkpoint_path,
                        _as_checkpoint(result, fingerprint, start, state),
                    )

                if retry is None:
                    _save()
                else:
                    call_with_retry(
                        _save, "checkpoint.save", retry,
                        on_retry=reliability.record_retry,
                    )
            # Injection point: the chunk is fully durable here — a kill at
            # this boundary is the canonical crash the chaos kill-matrix
            # resumes from.
            fault_point("pipeline.chunk", index)
    finally:
        sink.close()
    reliability.bad_rows += getattr(source, "bad_row_count", 0)
    reliability.quarantined_rows += getattr(source, "quarantined_rows", 0)
    result.resumed_at_chunk = start
    return result


def _merge_result(
    merged: StreamMarkResult,
    pass_result: EmbeddingResult,
    report: GuardReport,
    rows: int,
) -> None:
    merged.chunks += 1
    merged.rows += rows
    merged.fit_count += pass_result.fit_count
    merged.applied += pass_result.applied
    merged.vetoed += pass_result.vetoed
    merged.unchanged += pass_result.unchanged
    merged.slots_written |= pass_result.slots_written
    merged.guard_report.applied += report.applied
    merged.guard_report.vetoed += report.vetoed
    merged.guard_report.noop += report.noop
    merged.guard_report.vetoes_by_constraint.update(
        report.vetoes_by_constraint
    )


def _as_checkpoint(
    result: StreamMarkResult,
    fingerprint: str,
    start: int,
    sink_state: dict[str, Any],
) -> MarkCheckpoint:
    return MarkCheckpoint(
        fingerprint=fingerprint,
        chunks_done=start + result.chunks,
        rows_done=result.rows,
        counters={
            "fit_count": result.fit_count,
            "applied": result.applied,
            "vetoed": result.vetoed,
            "unchanged": result.unchanged,
            "report_applied": result.guard_report.applied,
            "report_vetoed": result.guard_report.vetoed,
            "report_noop": result.guard_report.noop,
        },
        slots_written=sorted(result.slots_written),
        vetoes_by_constraint=dict(result.guard_report.vetoes_by_constraint),
        sink_state=sink_state,
    )


def _restore_result(
    result: StreamMarkResult, checkpoint: MarkCheckpoint
) -> None:
    counters = checkpoint.counters
    result.rows = checkpoint.rows_done
    result.fit_count = counters.get("fit_count", 0)
    result.applied = counters.get("applied", 0)
    result.vetoed = counters.get("vetoed", 0)
    result.unchanged = counters.get("unchanged", 0)
    result.guard_report.applied = counters.get("report_applied", 0)
    result.guard_report.vetoed = counters.get("report_vetoed", 0)
    result.guard_report.noop = counters.get("report_noop", 0)
    result.guard_report.vetoes_by_constraint.update(
        checkpoint.vetoes_by_constraint
    )
    result.slots_written = set(checkpoint.slots_written)


# -- streaming detection -------------------------------------------------------

@dataclass
class StreamDetection:
    """Blind streamed extraction plus its accumulated vote state."""

    detection: DetectionResult
    votes: SlotVotes
    chunks: int
    rows: int
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)


@dataclass
class StreamVerification:
    """Streamed verification verdict plus its accumulated vote state."""

    verification: VerificationResult
    votes: SlotVotes
    chunks: int
    rows: int
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)

    @property
    def detected(self) -> bool:
        return self.verification.detected

    def summary(self) -> str:
        return self.verification.summary()


def _resolve_stream_domain(
    domain: CategoricalDomain | None, source, spec: EmbeddingSpec
) -> CategoricalDomain | None:
    """The one canonical domain every chunk decodes against.

    Per-chunk (possibly inference-widened) schemas must never influence
    decoding — the canonical value ordering is fixed once for the stream:
    the explicit parameter (the escrowed ``record.domain_values``, the
    blind-detection norm) or the source's declared schema.  ``None`` is
    only returned for schema-less iterables, where the first chunk's
    schema pins it instead.
    """
    if domain is not None:
        return domain
    schema = source_schema(source)
    if schema is not None:
        return schema.attribute(spec.mark_attribute).domain
    return None


def _check_map_inputs(
    spec: EmbeddingSpec, embedding_map: dict[Hashable, int] | None
) -> None:
    if spec.variant == VARIANT_MAP and embedding_map is None:
        raise DetectionError(
            "the 'map' variant needs the embedding_map recorded at embedding"
        )


def _chunk_votes(
    chunk: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None,
    domain: CategoricalDomain,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine | None,
    mode: str,
) -> SlotVotes:
    """One chunk's slot-vote tallies under the resolved backend."""
    if _vector_chunk(mode, chunk):
        return SlotVotes.from_arrays(
            *kernels.extract_votes_vector(
                chunk, spec, domain, embedding_map, value_mapping, engine
            )
        )
    return extract_slot_votes(
        chunk,
        key,
        spec,
        embedding_map,
        domain,
        value_mapping,
        engine=SCALAR if mode == SCALAR else engine,
    )


def stream_detect(
    source,
    key: MarkKey,
    spec: EmbeddingSpec,
    *,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    backend: HashEngine | str | None = None,
    retry: RetryPolicy | None = None,
) -> StreamDetection:
    """Blindly extract the most likely watermark from a streamed relation.

    Bit-identical to :func:`repro.core.detect` over the concatenation of
    the chunks, at O(chunk + channel length) memory: each chunk
    contributes one bincount tally to a :class:`VoteAccumulator`, and the
    majority/first-vote resolution runs once at the end.  A ``retry``
    policy makes transient chunk-read failures re-open the source at the
    failed boundary instead of aborting the scan — safe because each
    chunk's tally is merged only after the chunk was fully read.
    """
    _check_map_inputs(spec, embedding_map)
    engine, mode = _resolve_stream_backend(
        backend, key, _source_chunk_size(source)
    )
    resolved = _resolve_stream_domain(domain, source, spec)
    accumulator = VoteAccumulator(spec.channel_length)
    reliability = ReliabilityReport()
    rows = 0
    for chunk in _chunks_with_retry(source, 0, retry, reliability):
        if resolved is None:
            resolved = chunk.schema.attribute(spec.mark_attribute).domain
        if resolved is None:
            raise DetectionError(
                f"no categorical domain available for "
                f"{spec.mark_attribute!r}"
            )
        accumulator.add(
            _chunk_votes(
                chunk, key, spec, embedding_map, resolved, value_mapping,
                engine, mode,
            )
        )
        rows += len(chunk)
    reliability.bad_rows += getattr(source, "bad_row_count", 0)
    reliability.quarantined_rows += getattr(source, "quarantined_rows", 0)
    return StreamDetection(
        detection=accumulator.detection(spec),
        votes=accumulator.votes(),
        chunks=accumulator.chunks_merged,
        rows=rows,
        reliability=reliability,
    )


def stream_verify(
    source,
    key: MarkKey,
    spec: EmbeddingSpec,
    expected: Watermark,
    *,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = DEFAULT_SIGNIFICANCE,
    backend: HashEngine | str | None = None,
    retry: RetryPolicy | None = None,
) -> StreamVerification:
    """Streamed counterpart of :func:`repro.core.verify`.

    The verdict — decoded payload, per-slot votes, matching bits,
    false-hit probability — is bit-identical to the in-memory
    :func:`~repro.core.verify` on the same rows, for every chunk size.
    Suspect files may hold out-of-domain values (attacked copies): read
    them with ``infer_domains=True`` sources and pass the escrowed
    canonical ``domain`` explicitly, exactly like the in-memory blind
    detector.
    """
    if len(expected) != spec.watermark_length:
        raise DetectionError(
            f"expected watermark has {len(expected)} bits, spec says "
            f"{spec.watermark_length}"
        )
    streamed = stream_detect(
        source,
        key,
        spec,
        embedding_map=embedding_map,
        domain=domain,
        value_mapping=value_mapping,
        backend=backend,
        retry=retry,
    )
    return StreamVerification(
        verification=_assemble_verification(
            streamed.detection, expected, significance
        ),
        votes=streamed.votes,
        chunks=streamed.chunks,
        rows=streamed.rows,
        reliability=streamed.reliability,
    )


def stream_verify_multipass(
    source,
    keys: Sequence[MarkKey],
    spec: EmbeddingSpec,
    expecteds: Sequence[Watermark],
    *,
    embedding_maps: Sequence[dict[Hashable, int] | None] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = DEFAULT_SIGNIFICANCE,
    backend: str | None = None,
    retry: RetryPolicy | None = None,
) -> list[VerificationResult]:
    """Streamed counterpart of :func:`repro.core.verify_multipass`.

    Verifies P keyed passes of one spec over a single pass through the
    stream: every chunk is tallied for all P keys at once through the
    fused multi-pass kernel (all passes share the chunk's key-column
    factorization by construction), and P accumulators carry the per-pass
    vote state.  Results are bit-identical to a loop of in-memory
    :func:`~repro.core.verify` calls over the concatenated rows.
    """
    keys = list(keys)
    expecteds = list(expecteds)
    if len(keys) != len(expecteds):
        raise DetectionError(
            f"{len(keys)} keys but {len(expecteds)} expected watermarks"
        )
    maps: Sequence[dict[Hashable, int] | None]
    maps = (
        list(embedding_maps) if embedding_maps is not None
        else [None] * len(keys)
    )
    if len(maps) != len(keys):
        raise DetectionError(
            f"{len(keys)} keys but {len(maps)} embedding maps"
        )
    for embedding_map in maps:
        _check_map_inputs(spec, embedding_map)
    for expected in expecteds:
        if len(expected) != spec.watermark_length:
            raise DetectionError(
                f"expected watermark has {len(expected)} bits, spec says "
                f"{spec.watermark_length}"
            )
    chunk_size = _source_chunk_size(source)
    if isinstance(backend, HashEngine):
        raise StreamError(
            "stream_verify_multipass needs one engine per pass; pass a "
            "backend sentinel instead"
        )
    resolved_pairs = [
        _resolve_stream_backend(backend, key, chunk_size) for key in keys
    ]
    engines = [engine for engine, _ in resolved_pairs]
    mode = resolved_pairs[0][1] if resolved_pairs else AUTO
    resolved = _resolve_stream_domain(domain, source, spec)

    pass_count = len(keys)
    accumulators = [
        VoteAccumulator(spec.channel_length) for _ in range(pass_count)
    ]
    reliability = ReliabilityReport()
    for chunk in _chunks_with_retry(source, 0, retry, reliability):
        if resolved is None:
            resolved = chunk.schema.attribute(spec.mark_attribute).domain
        if resolved is None:
            raise DetectionError(
                f"no categorical domain available for "
                f"{spec.mark_attribute!r}"
            )
        if pass_count > 1 and _vector_chunk(mode, chunk):
            tallies = kernels.detect_multipass_votes(
                [chunk] * pass_count,
                spec,
                [resolved] * pass_count,
                maps if spec.variant == VARIANT_MAP else None,
                value_mapping,
                engines,
            )
            for accumulator, tally in zip(accumulators, tallies):
                accumulator.add(SlotVotes.from_arrays(*tally))
        else:
            for accumulator, pass_key, pass_engine, embedding_map in zip(
                accumulators, keys, engines, maps
            ):
                accumulator.add(
                    _chunk_votes(
                        chunk, pass_key, spec, embedding_map, resolved,
                        value_mapping, pass_engine, mode,
                    )
                )
    ecc = spec.ecc()
    return [
        _assemble_verification(
            accumulator.detection(spec, ecc=ecc), expected, significance
        )
        for accumulator, expected in zip(accumulators, expecteds)
    ]
