"""Streaming mark/detect pipelines: the out-of-core execution layer.

The paper's scheme decides every embedding and detection action from a
keyed hash of the tuple's (primary-key) value alone, so both directions
are embarrassingly chunkable:

* :func:`stream_mark` pulls schema-typed chunks from a
  :class:`~repro.stream.sources.ChunkSource`, runs the existing embed
  kernels on each chunk (the NumPy vector kernel for large chunks, on one
  warm stream-scoped :class:`~repro.crypto.HashEngine`), and pushes the
  marked chunks into a :class:`~repro.stream.sinks.ChunkSink` — with an
  optional checkpoint file making the run resumable after interruption;
* :func:`stream_verify` / :func:`stream_verify_multipass` keep running
  per-slot vote accumulators (:class:`~repro.core.VoteAccumulator`) that
  merge each chunk's bincount tallies associatively, preserving the
  global first-vote tie rule — streamed detection over an arbitrarily
  large file uses O(chunk + channel length) memory and is bit-identical
  to the in-memory :func:`~repro.core.verify` on the concatenated rows.

Memory discipline: the stream-scoped engine bounds its memoization caches
relative to the chunk size (fresh key values arrive forever; an unbounded
digest cache would silently grow O(rows)), per-chunk guards die with
their chunk (no cross-chunk rollback log), and the vector plan arrays are
weak-keyed per chunk factorization, so they are reclaimed with the chunk.
Within one process the engine stays warm across chunks *and* across a
mark-then-verify pair — re-seeing a value re-hashes nothing.
"""

from __future__ import annotations

import logging
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..core import kernels
from ..core.detection import (
    DEFAULT_SIGNIFICANCE,
    DetectionResult,
    SlotVotes,
    VerificationResult,
    VoteAccumulator,
    _assemble_verification,
    extract_slot_votes,
)
from ..core.embedding import (
    EmbeddingResult,
    EmbeddingSpec,
    VARIANT_KEYED,
    VARIANT_MAP,
    embed,
    value_pair_count,
)
from ..core.errors import DetectionError, SpecError
from ..core.watermark import Watermark
from ..crypto import AUTO, BACKENDS, ENGINE, SCALAR, VECTOR, HashEngine, MarkKey
from ..quality import GuardReport, QualityGuard
from ..relational import CategoricalDomain, Schema, Table
from ..reliability.breaker import CircuitBreaker
from ..reliability.budget import MemoryBudget
from ..reliability.deadline import Deadline, check_deadline
from ..reliability.faults import fault_point
from ..reliability.integrity import (
    RunLock,
    append_journal_chunk,
    audit_stream,
    journal_path,
    load_journal,
    manifest_from_journal,
    truncate_journal,
    write_journal_header,
)
from ..reliability.report import ReliabilityReport
from ..reliability.retry import (
    TRANSIENT,
    TRANSIENT_TYPES,
    RetryError,
    RetryPolicy,
    call_with_retry,
    classify,
)
from .checkpoint import (
    MarkCheckpoint,
    load_verified_checkpoint,
    mark_fingerprint,
    save_checkpoint,
)
from .errors import CheckpointError, StreamError
from .sinks import ChunkSink
from .sources import DEFAULT_CHUNK_SIZE, resolve_chunks, source_schema

logger = logging.getLogger(__name__)

#: circuit-breaker label of the VECTOR -> ENGINE stream-backend ladder
STREAM_VECTOR_LABEL = "stream.vector"

#: floor on the stream engine's memoization-cache entry bound; the bound
#: scales with the chunk size (see :func:`stream_engine`) so steady-state
#: memory is O(chunk), not O(rows seen)
MIN_ENGINE_ENTRIES = 8_192

#: cache-entry bound as a multiple of the chunk size — large enough that
#: a mark-then-verify pair (or repeated values across nearby chunks)
#: stays warm, small enough to stay chunk-proportional
ENGINE_ENTRY_FACTOR = 4


def stream_engine(
    key: MarkKey, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> HashEngine:
    """A stream-scoped :class:`HashEngine` with chunk-bounded caches.

    Unlike the process-wide :func:`~repro.crypto.get_engine` registry
    engine (bounded at millions of entries — fine for in-memory
    relations, O(rows) for an unbounded stream), this engine's digest and
    derived caches are capped at ``max(MIN_ENGINE_ENTRIES,
    ENGINE_ENTRY_FACTOR * chunk_size)`` entries — dropped wholesale when
    the cap is crossed, so steady-state memory stays O(chunk) however
    many rows flow past, while values re-seen within the window (a
    mark-then-verify pair, repeated chunks) still re-hash nothing.
    """
    return HashEngine(
        key,
        max_entries=max(MIN_ENGINE_ENTRIES, ENGINE_ENTRY_FACTOR * chunk_size),
    )


def _resolve_stream_backend(
    backend: HashEngine | str | None,
    key: MarkKey,
    chunk_size: int,
) -> tuple[HashEngine | None, str]:
    """Normalize a ``backend=`` parameter to ``(engine, mode)``.

    ``mode`` is one of the :data:`~repro.crypto.BACKENDS` sentinels;
    ``engine`` is the stream-scoped (or caller-supplied) instance every
    non-SCALAR chunk runs on.  An explicit :class:`HashEngine` instance
    keeps AUTO dispatch — unlike the in-memory entry points, the pipeline
    can drive the vector kernels with any engine, so callers may pass a
    differently-bounded (or shared, pre-warmed) instance without giving
    up the fast path.
    """
    if isinstance(backend, HashEngine):
        if backend.key != key:
            raise StreamError(
                "backend engine was built for a different MarkKey"
            )
        return backend, AUTO
    if backend is None:
        backend = AUTO
    if backend not in BACKENDS:
        raise StreamError(
            f"backend must be one of {BACKENDS} or a HashEngine, "
            f"got {backend!r}"
        )
    if backend == VECTOR and not kernels.numpy_available():
        raise StreamError("the VECTOR backend requires numpy")
    if backend == SCALAR:
        return None, SCALAR
    return stream_engine(key, chunk_size), backend


def _vector_chunk(mode: str, chunk: Table) -> bool:
    """Should this chunk run on the vector kernels under ``mode``?"""
    if mode == VECTOR:
        return True
    if mode == AUTO:
        return (
            kernels.numpy_available()
            and len(chunk) >= kernels.VECTOR_MIN_ROWS
        )
    return False  # SCALAR and ENGINE force their historical paths


def _source_chunk_size(source) -> int:
    return getattr(source, "chunk_size", DEFAULT_CHUNK_SIZE)


def _chunks_with_retry(
    source,
    start: int,
    policy: RetryPolicy | None,
    report: ReliabilityReport,
    sleep: Callable[[float], None] = time.sleep,
):
    """Chunks of ``source`` from ``start``, re-opening on transient read
    failures.

    A failed read never loses a chunk: the source is re-opened at the
    last *completed* chunk boundary (chunks are only counted once they
    have been fully yielded downstream), so a retried read re-produces
    the exact chunk whose read failed.  Attempts are bounded per
    position; plain iterables cannot be re-opened and propagate their
    failures unchanged.
    """
    if policy is None or not hasattr(source, "chunks"):
        yield from resolve_chunks(source, start)
        return
    position = start
    attempt = 0
    iterator = resolve_chunks(source, position)
    while True:
        try:
            chunk = next(iterator)
        except StopIteration:
            return
        # Only the transient taxonomy is caught at all: a permanent
        # failure (BadRowError, schema violations, deadline expiry, a
        # plain bug) propagates with its original traceback instead of
        # being routed through retry classification.
        except TRANSIENT_TYPES as exc:
            if classify(exc) is not TRANSIENT:
                raise
            attempt += 1
            if attempt >= policy.max_attempts:
                raise RetryError("source.read", attempt) from exc
            report.record_retry("source.read", attempt, exc)
            sleep(policy.delay("source.read", attempt))
            report.source_reopens += 1
            iterator = resolve_chunks(source, position)
            continue
        attempt = 0
        yield chunk
        position += 1


# -- streaming embed -----------------------------------------------------------

@dataclass
class StreamMarkResult:
    """Merged report of a (possibly resumed) streaming embed."""

    spec: EmbeddingSpec
    chunks: int
    rows: int
    fit_count: int
    applied: int
    vetoed: int
    unchanged: int
    slots_written: set[int] = field(default_factory=set)
    guard_report: GuardReport = field(default_factory=GuardReport)
    resumed_at_chunk: int = 0
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)
    #: :class:`~repro.stream.parallel.ParallelReport` when ``workers > 1``
    parallel: Any = None
    #: the :class:`~repro.reliability.integrity.ChunkManifest` recorded
    #: by the sink (``None`` when manifest recording was not armed)
    manifest: Any = None

    @property
    def slot_coverage(self) -> float:
        """Fraction of ``wm_data`` slots carried by at least one tuple."""
        if self.spec.channel_length == 0:
            return 0.0
        return len(self.slots_written) / self.spec.channel_length

    @property
    def alteration_fraction(self) -> float:
        """Fraction of fit carriers whose value actually changed."""
        if self.fit_count == 0:
            return 0.0
        return self.applied / self.fit_count


def _validate_mark_inputs(
    schema: Schema, watermark: Watermark, spec: EmbeddingSpec
) -> CategoricalDomain:
    """Schema-level validation of a streaming embed (no table in memory)."""
    if spec.variant != VARIANT_KEYED:
        raise StreamError(
            "stream_mark supports the fully blind 'keyed' variant only: "
            "the 'map' variant must remember one embedding-map entry per "
            "carrier, which contradicts bounded-memory streaming — use "
            "the in-memory embed for map-variant relations"
        )
    if len(watermark) != spec.watermark_length:
        raise SpecError(
            f"watermark has {len(watermark)} bits, spec says "
            f"{spec.watermark_length}"
        )
    attribute = schema.attribute(spec.mark_attribute)
    if not attribute.is_categorical or attribute.domain is None:
        raise SpecError(
            f"mark attribute {spec.mark_attribute!r} is not categorical"
        )
    if value_pair_count(attribute.domain) == 0:
        raise SpecError(
            f"attribute {spec.mark_attribute!r} has a single-value domain; "
            f"no embedding bandwidth"
        )
    schema.position(spec.key_attribute)  # raises if unknown
    return attribute.domain


def stream_mark(
    source,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    sink: ChunkSink,
    *,
    backend: HashEngine | str | None = None,
    checkpoint_path=None,
    resume: bool = False,
    constraints_factory: Callable[[], list] | None = None,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    memory_budget: MemoryBudget | None = None,
    breaker: CircuitBreaker | None = None,
    workers: int | str | None = None,
    watchdog=None,
    manifest: bool | None = None,
    verify_resume: bool = False,
    lock: bool = False,
) -> StreamMarkResult:
    """Embed ``watermark`` into a streamed relation, chunk by chunk.

    Each chunk runs through the existing embed kernels (vector kernel for
    large chunks) on one warm stream-scoped engine; marked chunks land in
    ``sink`` and the per-chunk guard logs/reports are merged into the
    returned :class:`StreamMarkResult`.  Because every decision is a pure
    function of ``(key, tuple key value)``, the concatenated sink output
    is cell-identical to an in-memory embed of the whole relation.

    With ``checkpoint_path`` the pipeline flushes the sink and atomically
    records progress after every chunk; ``resume=True`` picks up from the
    last record (verifying, via a keyless fingerprint, that key, spec and
    watermark match the interrupted run) and produces output identical to
    an uninterrupted run.

    ``constraints_factory`` builds a fresh constraint list per chunk
    (constraints are stateful, so instances cannot be shared across
    chunks); note that guard budgets therefore apply *per chunk*, not to
    the relation as a whole.

    The source must present the canonical declared domain on every chunk
    (``infer_domains=False``); marking under per-chunk inferred domains
    would embed against inconsistent value orderings.

    A ``retry`` policy arms the recovery layer: transient failures of
    source reads (re-open at the failed chunk boundary), sink writes
    (roll back to the last durable marker, rewrite the chunk) and
    checkpoint saves are retried with deterministic backoff, and every
    recovery action is counted in ``result.reliability``.  ``retry=None``
    (the default) keeps the historical fail-fast behavior.  Resume always
    prefers the newest checkpoint that passes CRC verification, falling
    back to the rotated ``.prev`` record when the newest is corrupt.

    ``workers`` fans the per-chunk embed kernels across a persistent
    process pool (``"auto"`` sizes it from ``cpu_count``); the ordered
    commit loop writes marked chunks to the sink in sequence, so output
    bytes, checkpoints and ``--resume`` stay identical to ``workers=1``.
    ``watchdog`` (parallel runs only) heartbeat-monitors pool workers;
    pass ``False`` to disable the default watchdog.

    Integrity layer (see :mod:`repro.reliability.integrity`):
    ``manifest`` arms per-chunk sha256 recording in the sink, journalled
    next to the checkpoint (``<checkpoint>.journal``) so
    :func:`~repro.reliability.integrity.audit_stream` can localize any
    later corruption to the exact chunk.  The default (``None``) arms it
    automatically whenever a ``checkpoint_path`` is given and the sink
    supports it — hashing never changes the output bytes.
    ``verify_resume=True`` makes resume re-hash the surviving output
    prefix against the journal instead of trusting it, rewinding to the
    last *verified* chunk (bit-rot in the prefix is rewritten, and the
    final output stays byte-identical to an uninterrupted run).
    ``lock=True`` takes an ``O_EXCL`` run lease on the checkpoint/sink
    pair so a concurrent embed/resume of the same output fails fast with
    :class:`~repro.reliability.integrity.RunLockedError` instead of
    interleaving writes; a lease whose holder died is taken over.
    """
    from .parallel import resolve_workers

    worker_count = resolve_workers(workers)
    if worker_count > 1:
        if isinstance(backend, HashEngine):
            raise StreamError(
                "parallel stream_mark cannot share a HashEngine across "
                "processes; pass a backend sentinel instead"
            )
        if constraints_factory is not None:
            raise StreamError(
                "parallel stream_mark does not support "
                "constraints_factory: guard constraints are stateful "
                "and chunk-scoped — run with workers=1"
            )
        if memory_budget is not None:
            raise StreamError(
                "parallel stream_mark does not support a memory_budget: "
                "adaptive chunk slicing is a serial-path feature — run "
                "with workers=1"
            )
    schema = source_schema(source)
    if schema is None:
        raise StreamError(
            "stream_mark needs a schema-carrying ChunkSource "
            "(CSV/SQLite/synthetic), not a plain iterable"
        )
    domain = _validate_mark_inputs(schema, watermark, spec)
    chunk_size = _source_chunk_size(source)
    engine, mode = _resolve_stream_backend(backend, key, chunk_size)
    wm_data = spec.ecc().encode(watermark.bits, spec.channel_length)

    result = StreamMarkResult(
        spec=spec, chunks=0, rows=0, fit_count=0, applied=0, vetoed=0,
        unchanged=0,
    )
    fingerprint = mark_fingerprint(key, spec, watermark)
    reliability = result.reliability

    supports_manifest = getattr(sink, "supports_manifest", False)
    record_manifest = (
        manifest if manifest is not None
        else (checkpoint_path is not None and supports_manifest)
    )
    if record_manifest and not supports_manifest:
        raise StreamError(
            f"{type(sink).__name__} cannot record a chunk-hash manifest; "
            f"use a CSV/gzip/SQLite sink or pass manifest=False"
        )
    if verify_resume and not resume:
        raise StreamError("verify_resume=True requires resume=True")
    if verify_resume and not record_manifest:
        raise StreamError(
            "verified resume needs the chunk-hash manifest: keep "
            "manifest recording enabled (a checkpoint_path plus a "
            "manifest-capable sink)"
        )
    journal = (
        journal_path(checkpoint_path)
        if record_manifest and checkpoint_path is not None
        else None
    )

    run_lock = None
    if lock:
        # The lease guards the whole run, resume inspection included — a
        # concurrent process must not even read the checkpoint while we
        # may be rewriting it.
        run_lock = RunLock(
            _lock_path(checkpoint_path, sink), fingerprint=fingerprint
        )
        if run_lock.acquire():
            reliability.lease_takeovers += 1

    start = 0
    try:
        if resume:
            if checkpoint_path is None:
                raise CheckpointError("resume=True needs a checkpoint_path")
            checkpoint, rolled_back = load_verified_checkpoint(checkpoint_path)
            if checkpoint is None:
                raise CheckpointError(
                    f"no checkpoint to resume from at {checkpoint_path}"
                )
            if rolled_back:
                reliability.checkpoint_rollbacks += 1
            if checkpoint.fingerprint != fingerprint:
                raise CheckpointError(
                    "checkpoint belongs to a different (key, spec, watermark) "
                    "run — refusing to resume into a half-marked relation"
                )
            if verify_resume:
                start = _verified_restore(
                    result, sink, schema, journal, fingerprint, reliability
                )
            else:
                start = checkpoint.chunks_done
                _restore_result(result, checkpoint)
                prefix = None
                if journal is not None:
                    jheader, jrecords = load_journal(journal)
                    if (
                        jheader is not None
                        and jheader.get("fingerprint") == fingerprint
                        and len(jrecords) >= start
                    ):
                        prefix = manifest_from_journal(
                            jheader, jrecords[:start]
                        )
                    else:
                        # The journal is missing, foreign, or shorter than
                        # the checkpoint: the prefix digests cannot be
                        # reconstructed, so recording cannot continue
                        # coherently — drop it rather than leave a
                        # misleading half-manifest for a later audit.
                        logger.warning(
                            "chunk-hash journal at %s is missing or does "
                            "not match this run; manifest recording "
                            "disabled for the resumed run", journal,
                        )
                        try:
                            os.unlink(journal)
                        except OSError:
                            pass
                        journal = None
                        record_manifest = False
                if record_manifest:
                    sink.arm_manifest()
                sink.restore(schema, checkpoint.sink_state)
                if prefix is not None:
                    sink.restore_manifest(prefix)
                    truncate_journal(journal, start)
        else:
            if record_manifest:
                sink.arm_manifest()
            sink.open(schema)
            _start_journal(journal, sink, fingerprint)

        return _stream_mark_run(
            source=source, sink=sink, schema=schema, result=result,
            reliability=reliability, start=start, fingerprint=fingerprint,
            watermark=watermark, key=key, spec=spec, domain=domain,
            wm_data=wm_data, engine=engine, mode=mode,
            chunk_size=chunk_size, constraints_factory=constraints_factory,
            checkpoint_path=checkpoint_path, journal=journal,
            run_lock=run_lock, retry=retry, deadline=deadline,
            memory_budget=memory_budget, breaker=breaker,
            worker_count=worker_count, watchdog=watchdog,
            record_manifest=record_manifest,
        )
    finally:
        if run_lock is not None:
            run_lock.release()


def _stream_mark_run(
    *,
    source, sink, schema, result, reliability, start, fingerprint,
    watermark, key, spec, domain, wm_data, engine, mode, chunk_size,
    constraints_factory, checkpoint_path, journal, run_lock, retry,
    deadline, memory_budget, breaker, worker_count, watchdog,
    record_manifest,
) -> StreamMarkResult:
    """The chunk loop of :func:`stream_mark`, after the sink/journal/
    lease are positioned (split out so the lease's try/finally wraps
    everything without another indentation level)."""
    # The durable marker the retry layer rolls the sink back to before
    # rewriting a chunk whose write failed mid-way.
    last_good = sink.flush_state() if retry is not None else None

    def _commit_marked(index, marked, pass_result, guard_report, nrows):
        """Make one marked chunk durable: merge its reports, write it to
        the sink (rolling back and rewriting under ``retry``) and record
        the checkpoint.  Shared by the serial loop and the parallel
        ordered-commit loop — both call it in strict chunk order, which
        is what keeps output bytes and checkpoints identical."""
        nonlocal last_good
        _merge_result(result, pass_result, guard_report, nrows)

        if retry is None:
            sink.write_chunk(marked)
            state = (
                sink.flush_state() if checkpoint_path is not None
                else None
            )
        else:
            def _write():
                sink.write_chunk(marked)
                return sink.flush_state()

            def _rollback():
                reliability.sink_rollbacks += 1
                sink.restore(schema, last_good)

            state = call_with_retry(
                _write, "sink.write", retry,
                recover=_rollback, on_retry=reliability.record_retry,
            )
            last_good = state

        if journal is not None:
            # Journal before checkpoint: a crash between the two leaves
            # the journal one record ahead, which resume tolerates (the
            # journalled chunk's bytes are durable — flush_state above).
            append_journal_chunk(
                journal,
                index=index,
                entry=sink.manifest.entries[-1],
                delta=_journal_delta(pass_result, guard_report, nrows),
                sink_state=state,
            )
        if run_lock is not None:
            run_lock.heartbeat()

        if checkpoint_path is not None:
            def _save():
                save_checkpoint(
                    checkpoint_path,
                    _as_checkpoint(result, fingerprint, start, state),
                )

            if retry is None:
                _save()
            else:
                call_with_retry(
                    _save, "checkpoint.save", retry,
                    on_retry=reliability.record_retry,
                )

    try:
        if worker_count > 1:
            from .parallel import parallel_mark, resolve_watchdog

            result.parallel = parallel_mark(
                source, start, _commit_marked,
                watermark=watermark, key=key, spec=spec, domain=domain,
                wm_data=wm_data, mode=mode, chunk_size=chunk_size,
                workers=worker_count, retry=retry, deadline=deadline,
                watchdog=resolve_watchdog(watchdog), breaker=breaker,
                reliability=reliability,
            )
        else:
            for chunk in _chunks_with_retry(
                source, start, retry, reliability
            ):
                index = start + result.chunks  # global chunk index
                # Cooperative stall-safety: the deadline is consulted at
                # every chunk boundary, so a budgeted run stops (resumably
                # — the checkpoint of chunk index-1 is durable) instead of
                # hanging.
                check_deadline(deadline, "pipeline.chunk", index)
                chunk_domain = chunk.schema.attribute(
                    spec.mark_attribute
                ).domain
                if chunk_domain != domain:
                    raise StreamError(
                        "chunk domain drifted from the declared domain — "
                        "stream_mark sources must be built with "
                        "infer_domains=False"
                    )
                marked, pass_result, guard_report, mode = _embed_chunk(
                    chunk, watermark, key, spec, domain, wm_data,
                    constraints_factory, engine, mode, index,
                    memory_budget, breaker, reliability,
                )
                _commit_marked(
                    index, marked, pass_result, guard_report, len(chunk)
                )
                # Injection point: the chunk is fully durable here — a kill
                # at this boundary is the canonical crash the chaos
                # kill-matrix resumes from.
                fault_point("pipeline.chunk", index)
    finally:
        sink.close()
    reliability.bad_rows += getattr(source, "bad_row_count", 0)
    reliability.quarantined_rows += getattr(source, "quarantined_rows", 0)
    reliability.corrupt_chunks += getattr(source, "corrupt_chunks", 0)
    result.resumed_at_chunk = start
    if record_manifest:
        result.manifest = getattr(sink, "manifest", None)
    return result


def _lock_path(checkpoint_path, sink) -> str:
    """Where the run lease lives: next to the checkpoint when there is
    one (the thing two resumes actually race on), else next to the
    sink's output file."""
    if checkpoint_path is not None:
        return str(checkpoint_path) + ".lock"
    path = getattr(sink, "path", None)
    if path is None:
        raise StreamError(
            "run locking needs a checkpoint_path or a path-backed sink"
        )
    return str(path) + ".lock"


def _start_journal(journal, sink, fingerprint: str) -> None:
    """Begin a fresh chunk-hash journal for a just-opened sink."""
    if journal is None:
        return
    write_journal_header(
        journal,
        fingerprint=fingerprint,
        kind=sink.manifest.kind,
        header_entry=sink.manifest.header,
        open_state=sink.flush_state(),
    )


def _journal_delta(pass_result, guard_report, nrows: int) -> dict:
    """One chunk's counter contributions — per-chunk *deltas*, so any
    journal prefix reconstructs the cumulative result exactly."""
    return {
        "rows": nrows,
        "fit_count": pass_result.fit_count,
        "applied": pass_result.applied,
        "vetoed": pass_result.vetoed,
        "unchanged": pass_result.unchanged,
        "report_applied": guard_report.applied,
        "report_vetoed": guard_report.vetoed,
        "report_noop": guard_report.noop,
        "slots": sorted(pass_result.slots_written),
        "vetoes": dict(guard_report.vetoes_by_constraint),
    }


def _restore_result_from_journal(result: StreamMarkResult, records) -> None:
    """Rebuild cumulative counters from journalled per-chunk deltas.

    Under verified resume the journal prefix is authoritative — the
    checkpoint may describe chunks the rewind just discarded."""
    for record in records:
        delta = record.get("delta") or {}
        result.rows += int(delta.get("rows", 0))
        result.fit_count += int(delta.get("fit_count", 0))
        result.applied += int(delta.get("applied", 0))
        result.vetoed += int(delta.get("vetoed", 0))
        result.unchanged += int(delta.get("unchanged", 0))
        result.guard_report.applied += int(delta.get("report_applied", 0))
        result.guard_report.vetoed += int(delta.get("report_vetoed", 0))
        result.guard_report.noop += int(delta.get("report_noop", 0))
        result.slots_written.update(delta.get("slots", ()))
        result.guard_report.vetoes_by_constraint.update(
            delta.get("vetoes", {})
        )


def _verified_restore(
    result: StreamMarkResult,
    sink,
    schema,
    journal,
    fingerprint: str,
    reliability: ReliabilityReport,
) -> int:
    """Re-hash the surviving output prefix and position sink + journal +
    result at the last *verified* chunk.  Returns the resume index.

    Bit-rot anywhere in the prefix rewinds to just before the damage (a
    damaged header segment restarts from scratch); the rewound chunks are
    rewritten by the resumed run, so the final output is byte-identical
    to an uninterrupted one.
    """
    header, records = load_journal(journal)
    if header is None or header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"verified resume needs an intact chunk-hash journal at "
            f"{journal} matching this run; re-run with "
            f"verify_resume=False, or restart without resume"
        )
    prefix = manifest_from_journal(header, records)
    report = audit_stream(
        sink.path, manifest=prefix,
        table=getattr(sink, "table", "relation"),
    )
    reliability.chunks_verified += report.chunks
    sink.arm_manifest()
    open_state = header.get("open_state")
    verified = report.verified_chunks
    if not report.header_ok or (verified == 0 and open_state is None):
        # even the preamble is damaged (or there is nothing trustworthy
        # to rewind to): restart the output from scratch
        reliability.integrity_rewinds += len(records) + 1
        sink.open(schema)
        _start_journal(journal, sink, fingerprint)
        return 0
    if verified < len(records):
        reliability.integrity_rewinds += len(records) - verified
    _restore_result_from_journal(result, records[:verified])
    if verified == 0:
        sink.restore(schema, open_state)
    else:
        sink.restore(schema, records[verified - 1]["sink_state"])
    sink.restore_manifest(manifest_from_journal(header, records[:verified]))
    truncate_journal(journal, verified)
    return verified


def _embed_one(
    chunk: Table,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    domain: CategoricalDomain,
    wm_data,
    guard: QualityGuard,
    engine: HashEngine | None,
    mode: str,
) -> EmbeddingResult:
    """Embed ``chunk`` in place under the resolved backend ``mode``."""
    if _vector_chunk(mode, chunk):
        pass_result = EmbeddingResult(
            spec=spec, fit_count=0, applied=0, vetoed=0, unchanged=0,
        )
        kernels.embed_vector(
            chunk, spec, domain, wm_data, guard, pass_result, engine
        )
        return pass_result
    return embed(
        chunk,
        watermark,
        key,
        spec,
        guard=guard,
        engine=SCALAR if mode == SCALAR else engine,
    )


def _merge_pass(total: EmbeddingResult, part: EmbeddingResult) -> None:
    total.fit_count += part.fit_count
    total.applied += part.applied
    total.vetoed += part.vetoed
    total.unchanged += part.unchanged
    total.slots_written |= part.slots_written


def _merge_guard(total: GuardReport, part: GuardReport) -> None:
    total.applied += part.applied
    total.vetoed += part.vetoed
    total.noop += part.noop
    total.vetoes_by_constraint.update(part.vetoes_by_constraint)


def _embed_slices(
    chunk: Table,
    slices: int,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    domain: CategoricalDomain,
    wm_data,
    engine: HashEngine | None,
    mode: str,
) -> tuple[Table, EmbeddingResult, GuardReport]:
    """Embed ``chunk`` in ``slices`` bounded pieces (memory-budget path).

    Per-tuple decisions are pure functions of the keyed hash, so slicing
    at any boundary is cell-identical to embedding the whole chunk; the
    marked rows are reassembled into ONE table so the sink still receives
    one write per *original* chunk — the gzip member framing (and hence
    byte-identity with an unsliced run) is preserved.  Only guard-less
    embeds may be sliced (guard budgets are chunk-scoped); the caller
    enforces that.
    """
    total = EmbeddingResult(
        spec=spec, fit_count=0, applied=0, vetoed=0, unchanged=0,
    )
    report = GuardReport()
    rows: list = []
    n = len(chunk)
    per = -(-n // slices)  # ceil: bounded working set per piece
    for offset in range(0, n, per):
        part = chunk.take(range(offset, min(offset + per, n)))
        guard = QualityGuard([])
        guard.bind(part)
        _merge_pass(
            total,
            _embed_one(
                part, watermark, key, spec, domain, wm_data, guard,
                engine, mode,
            ),
        )
        _merge_guard(report, guard.report)
        rows.extend(iter(part))
    marked = Table.from_trusted_rows(chunk.schema, rows, name=chunk.name)
    return marked, total, report


def _embed_chunk(
    chunk: Table,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    domain: CategoricalDomain,
    wm_data,
    constraints_factory: Callable[[], list] | None,
    engine: HashEngine | None,
    mode: str,
    index: int,
    budget: MemoryBudget | None,
    breaker: CircuitBreaker | None,
    reliability: ReliabilityReport,
) -> tuple[Table, EmbeddingResult, GuardReport, str]:
    """Embed one chunk, adapting to memory pressure and backend faults.

    Returns ``(marked, pass_result, guard_report, mode)`` — ``marked`` is
    the table to write (the chunk itself on the normal in-place path, a
    reassembled table when the memory budget sliced the embed) and
    ``mode`` is the possibly-degraded backend the *remaining* chunks
    should keep using.  Two bit-identical adaptations can replay the
    chunk:

    * a :class:`MemoryBudget` breach (sampled here, at the boundary) or a
      raised ``MemoryError`` halves the effective chunk size and replays;
      refused when ``constraints_factory`` is set, because guard budgets
      are chunk-scoped and slicing would change their semantics;
    * when the circuit breaker opens on :data:`STREAM_VECTOR_LABEL`
      (K consecutive vector-path transients), the run degrades down the
      existing ladder to the ENGINE backend — same cells, no numpy.
    """
    while True:
        if budget is not None and budget.over_budget():
            if budget.shrink(f"over budget before chunk {index}"):
                reliability.chunk_shrinks += 1
        slices = (
            budget.slices(len(chunk))
            if budget is not None and constraints_factory is None
            else 1
        )
        try:
            # Injection point: embed-step faults (hang/slow/memory) land
            # here, *inside* the adaptive retry, unlike the post-durability
            # "pipeline.chunk" point.
            fault_point("pipeline.embed", index)
            if slices == 1:
                guard = QualityGuard(
                    list(constraints_factory()) if constraints_factory
                    else []
                )
                guard.bind(chunk)
                pass_result = _embed_one(
                    chunk, watermark, key, spec, domain, wm_data, guard,
                    engine, mode,
                )
                marked, report = chunk, guard.report
            else:
                marked, pass_result, report = _embed_slices(
                    chunk, slices, watermark, key, spec, domain, wm_data,
                    engine, mode,
                )
            if breaker is not None and _vector_chunk(mode, chunk):
                breaker.record_success(STREAM_VECTOR_LABEL)
            if budget is not None and budget.note_healthy():
                reliability.chunk_regrows += 1
            return marked, pass_result, report, mode
        except TRANSIENT_TYPES as exc:
            if classify(exc) is not TRANSIENT:
                raise
            vectored = _vector_chunk(mode, chunk)
            if vectored and breaker is not None:
                if breaker.record_failure(
                    STREAM_VECTOR_LABEL, cause=repr(exc)
                ):
                    reliability.breaker_trips[STREAM_VECTOR_LABEL] += 1
            if isinstance(exc, MemoryError):
                if constraints_factory is not None:
                    # Guard budgets are chunk-scoped: slicing would change
                    # which alterations the budget admits, so the guarded
                    # path refuses to adapt and lets the caller see it.
                    raise
                if budget is not None and budget.shrink(
                    f"MemoryError at chunk {index}"
                ):
                    reliability.chunk_shrinks += 1
                    logger.warning(
                        "memory pressure at chunk %d: replaying in %d "
                        "slices", index, budget.slices(len(chunk)),
                    )
                    continue
            if (
                vectored
                and breaker is not None
                and breaker.is_open(STREAM_VECTOR_LABEL)
            ):
                # Degrade down the existing bit-identical ladder: the
                # ENGINE backend computes the same cells without numpy.
                reliability.backend_fallbacks += 1
                logger.warning(
                    "circuit breaker open on %s after %r: degrading "
                    "remaining chunks to the ENGINE backend",
                    STREAM_VECTOR_LABEL, exc,
                )
                mode = ENGINE
                continue
            raise


def _merge_result(
    merged: StreamMarkResult,
    pass_result: EmbeddingResult,
    report: GuardReport,
    rows: int,
) -> None:
    merged.chunks += 1
    merged.rows += rows
    merged.fit_count += pass_result.fit_count
    merged.applied += pass_result.applied
    merged.vetoed += pass_result.vetoed
    merged.unchanged += pass_result.unchanged
    merged.slots_written |= pass_result.slots_written
    merged.guard_report.applied += report.applied
    merged.guard_report.vetoed += report.vetoed
    merged.guard_report.noop += report.noop
    merged.guard_report.vetoes_by_constraint.update(
        report.vetoes_by_constraint
    )


def _as_checkpoint(
    result: StreamMarkResult,
    fingerprint: str,
    start: int,
    sink_state: dict[str, Any],
) -> MarkCheckpoint:
    return MarkCheckpoint(
        fingerprint=fingerprint,
        chunks_done=start + result.chunks,
        rows_done=result.rows,
        counters={
            "fit_count": result.fit_count,
            "applied": result.applied,
            "vetoed": result.vetoed,
            "unchanged": result.unchanged,
            "report_applied": result.guard_report.applied,
            "report_vetoed": result.guard_report.vetoed,
            "report_noop": result.guard_report.noop,
        },
        slots_written=sorted(result.slots_written),
        vetoes_by_constraint=dict(result.guard_report.vetoes_by_constraint),
        sink_state=sink_state,
    )


def _restore_result(
    result: StreamMarkResult, checkpoint: MarkCheckpoint
) -> None:
    counters = checkpoint.counters
    result.rows = checkpoint.rows_done
    result.fit_count = counters.get("fit_count", 0)
    result.applied = counters.get("applied", 0)
    result.vetoed = counters.get("vetoed", 0)
    result.unchanged = counters.get("unchanged", 0)
    result.guard_report.applied = counters.get("report_applied", 0)
    result.guard_report.vetoed = counters.get("report_vetoed", 0)
    result.guard_report.noop = counters.get("report_noop", 0)
    result.guard_report.vetoes_by_constraint.update(
        checkpoint.vetoes_by_constraint
    )
    result.slots_written = set(checkpoint.slots_written)


# -- streaming detection -------------------------------------------------------

@dataclass
class StreamDetection:
    """Blind streamed extraction plus its accumulated vote state."""

    detection: DetectionResult
    votes: SlotVotes
    chunks: int
    rows: int
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)
    #: :class:`~repro.stream.parallel.ParallelReport` when ``workers > 1``
    parallel: Any = None


@dataclass
class StreamVerification:
    """Streamed verification verdict plus its accumulated vote state."""

    verification: VerificationResult
    votes: SlotVotes
    chunks: int
    rows: int
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)
    #: :class:`~repro.stream.parallel.ParallelReport` when ``workers > 1``
    parallel: Any = None

    @property
    def detected(self) -> bool:
        return self.verification.detected

    def summary(self) -> str:
        return self.verification.summary()


def _resolve_stream_domain(
    domain: CategoricalDomain | None, source, spec: EmbeddingSpec
) -> CategoricalDomain | None:
    """The one canonical domain every chunk decodes against.

    Per-chunk (possibly inference-widened) schemas must never influence
    decoding — the canonical value ordering is fixed once for the stream:
    the explicit parameter (the escrowed ``record.domain_values``, the
    blind-detection norm) or the source's declared schema.  ``None`` is
    only returned for schema-less iterables, where the first chunk's
    schema pins it instead.
    """
    if domain is not None:
        return domain
    schema = source_schema(source)
    if schema is not None:
        return schema.attribute(spec.mark_attribute).domain
    return None


def _check_map_inputs(
    spec: EmbeddingSpec, embedding_map: dict[Hashable, int] | None
) -> None:
    if spec.variant == VARIANT_MAP and embedding_map is None:
        raise DetectionError(
            "the 'map' variant needs the embedding_map recorded at embedding"
        )


def _chunk_votes(
    chunk: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None,
    domain: CategoricalDomain,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine | None,
    mode: str,
) -> SlotVotes:
    """One chunk's slot-vote tallies under the resolved backend."""
    if _vector_chunk(mode, chunk):
        return SlotVotes.from_arrays(
            *kernels.extract_votes_vector(
                chunk, spec, domain, embedding_map, value_mapping, engine
            )
        )
    return extract_slot_votes(
        chunk,
        key,
        spec,
        embedding_map,
        domain,
        value_mapping,
        engine=SCALAR if mode == SCALAR else engine,
    )


def _chunk_votes_adaptive(
    chunk: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None,
    domain: CategoricalDomain,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine | None,
    mode: str,
    index: int,
    budget: MemoryBudget | None,
    breaker: CircuitBreaker | None,
    reliability: ReliabilityReport,
) -> tuple[list[SlotVotes], str]:
    """One chunk's tallies, adapting like :func:`_embed_chunk` does.

    Returns ``(tallies, mode)``: the tallies are produced *in row order*
    (sub-slices of a split chunk stay ordered), so merging them into the
    accumulator one by one preserves the global first-vote tie rule and
    the verdict stays bit-identical to an unsplit scan.
    """
    while True:
        if budget is not None and budget.over_budget():
            if budget.shrink(f"over budget before chunk {index}"):
                reliability.chunk_shrinks += 1
        slices = budget.slices(len(chunk)) if budget is not None else 1
        try:
            if slices == 1:
                tallies = [
                    _chunk_votes(
                        chunk, key, spec, embedding_map, domain,
                        value_mapping, engine, mode,
                    )
                ]
            else:
                tallies = []
                n = len(chunk)
                per = -(-n // slices)
                for offset in range(0, n, per):
                    part = chunk.take(range(offset, min(offset + per, n)))
                    tallies.append(
                        _chunk_votes(
                            part, key, spec, embedding_map, domain,
                            value_mapping, engine, mode,
                        )
                    )
            if breaker is not None and _vector_chunk(mode, chunk):
                breaker.record_success(STREAM_VECTOR_LABEL)
            if budget is not None and budget.note_healthy():
                reliability.chunk_regrows += 1
            return tallies, mode
        except TRANSIENT_TYPES as exc:
            if classify(exc) is not TRANSIENT:
                raise
            vectored = _vector_chunk(mode, chunk)
            if vectored and breaker is not None:
                if breaker.record_failure(
                    STREAM_VECTOR_LABEL, cause=repr(exc)
                ):
                    reliability.breaker_trips[STREAM_VECTOR_LABEL] += 1
            if isinstance(exc, MemoryError):
                if budget is not None and budget.shrink(
                    f"MemoryError at chunk {index}"
                ):
                    reliability.chunk_shrinks += 1
                    continue
            if (
                vectored
                and breaker is not None
                and breaker.is_open(STREAM_VECTOR_LABEL)
            ):
                reliability.backend_fallbacks += 1
                logger.warning(
                    "circuit breaker open on %s after %r: degrading "
                    "remaining chunks to the ENGINE backend",
                    STREAM_VECTOR_LABEL, exc,
                )
                mode = ENGINE
                continue
            raise


def stream_detect(
    source,
    key: MarkKey,
    spec: EmbeddingSpec,
    *,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    backend: HashEngine | str | None = None,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    memory_budget: MemoryBudget | None = None,
    breaker: CircuitBreaker | None = None,
    workers: int | str | None = None,
    watchdog=None,
) -> StreamDetection:
    """Blindly extract the most likely watermark from a streamed relation.

    Bit-identical to :func:`repro.core.detect` over the concatenation of
    the chunks, at O(chunk + channel length) memory: each chunk
    contributes one bincount tally to a :class:`VoteAccumulator`, and the
    majority/first-vote resolution runs once at the end.  A ``retry``
    policy makes transient chunk-read failures re-open the source at the
    failed boundary instead of aborting the scan — safe because each
    chunk's tally is merged only after the chunk was fully read.

    ``workers`` fans chunk decode + kernel work across a persistent
    process pool (``"auto"`` sizes it from ``cpu_count``); tallies are
    merged in chunk order, so the verdict is bit-identical to
    ``workers=1`` for every worker count.  ``watchdog`` (parallel runs
    only) heartbeat-monitors pool workers; ``False`` disables it.
    """
    from .parallel import resolve_workers

    _check_map_inputs(spec, embedding_map)
    worker_count = resolve_workers(workers)
    if worker_count > 1:
        if isinstance(backend, HashEngine):
            raise StreamError(
                "parallel stream_detect cannot share a HashEngine across "
                "processes; pass a backend sentinel instead"
            )
        if memory_budget is not None:
            raise StreamError(
                "parallel stream_detect does not support a memory_budget: "
                "adaptive chunk slicing is a serial-path feature — run "
                "with workers=1"
            )
    chunk_size = _source_chunk_size(source)
    engine, mode = _resolve_stream_backend(backend, key, chunk_size)
    resolved = _resolve_stream_domain(domain, source, spec)
    if worker_count > 1:
        from .parallel import parallel_votes, resolve_watchdog

        reliability = ReliabilityReport()
        accumulators, chunks_seen, rows, report = parallel_votes(
            source, [key], spec,
            maps=[embedding_map], domain=resolved,
            value_mapping=value_mapping, mode=mode,
            chunk_size=chunk_size, workers=worker_count, retry=retry,
            deadline=deadline, watchdog=resolve_watchdog(watchdog),
            breaker=breaker, reliability=reliability,
        )
        accumulator = accumulators[0]
        reliability.bad_rows += getattr(source, "bad_row_count", 0)
        reliability.quarantined_rows += getattr(
            source, "quarantined_rows", 0
        )
        reliability.corrupt_chunks += getattr(source, "corrupt_chunks", 0)
        return StreamDetection(
            detection=accumulator.detection(spec),
            votes=accumulator.votes(),
            chunks=chunks_seen,
            rows=rows,
            reliability=reliability,
            parallel=report,
        )
    accumulator = VoteAccumulator(spec.channel_length)
    reliability = ReliabilityReport()
    rows = 0
    chunks_seen = 0
    for chunk in _chunks_with_retry(source, 0, retry, reliability):
        index = chunks_seen
        check_deadline(deadline, "pipeline.chunk", index)
        if resolved is None:
            resolved = chunk.schema.attribute(spec.mark_attribute).domain
        if resolved is None:
            raise DetectionError(
                f"no categorical domain available for "
                f"{spec.mark_attribute!r}"
            )
        tallies, mode = _chunk_votes_adaptive(
            chunk, key, spec, embedding_map, resolved, value_mapping,
            engine, mode, index, memory_budget, breaker, reliability,
        )
        for tally in tallies:
            accumulator.add(tally)
        rows += len(chunk)
        chunks_seen += 1
        fault_point("pipeline.chunk", index)
    reliability.bad_rows += getattr(source, "bad_row_count", 0)
    reliability.quarantined_rows += getattr(source, "quarantined_rows", 0)
    reliability.corrupt_chunks += getattr(source, "corrupt_chunks", 0)
    return StreamDetection(
        detection=accumulator.detection(spec),
        votes=accumulator.votes(),
        chunks=chunks_seen,
        rows=rows,
        reliability=reliability,
    )


def stream_verify(
    source,
    key: MarkKey,
    spec: EmbeddingSpec,
    expected: Watermark,
    *,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = DEFAULT_SIGNIFICANCE,
    backend: HashEngine | str | None = None,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    memory_budget: MemoryBudget | None = None,
    breaker: CircuitBreaker | None = None,
    workers: int | str | None = None,
    watchdog=None,
) -> StreamVerification:
    """Streamed counterpart of :func:`repro.core.verify`.

    The verdict — decoded payload, per-slot votes, matching bits,
    false-hit probability — is bit-identical to the in-memory
    :func:`~repro.core.verify` on the same rows, for every chunk size.
    Suspect files may hold out-of-domain values (attacked copies): read
    them with ``infer_domains=True`` sources and pass the escrowed
    canonical ``domain`` explicitly, exactly like the in-memory blind
    detector.
    """
    if len(expected) != spec.watermark_length:
        raise DetectionError(
            f"expected watermark has {len(expected)} bits, spec says "
            f"{spec.watermark_length}"
        )
    streamed = stream_detect(
        source,
        key,
        spec,
        embedding_map=embedding_map,
        domain=domain,
        value_mapping=value_mapping,
        backend=backend,
        retry=retry,
        deadline=deadline,
        memory_budget=memory_budget,
        breaker=breaker,
        workers=workers,
        watchdog=watchdog,
    )
    return StreamVerification(
        verification=_assemble_verification(
            streamed.detection, expected, significance
        ),
        votes=streamed.votes,
        chunks=streamed.chunks,
        rows=streamed.rows,
        reliability=streamed.reliability,
        parallel=streamed.parallel,
    )


def stream_verify_multipass(
    source,
    keys: Sequence[MarkKey],
    spec: EmbeddingSpec,
    expecteds: Sequence[Watermark],
    *,
    embedding_maps: Sequence[dict[Hashable, int] | None] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = DEFAULT_SIGNIFICANCE,
    backend: str | None = None,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    workers: int | str | None = None,
    watchdog=None,
) -> list[VerificationResult]:
    """Streamed counterpart of :func:`repro.core.verify_multipass`.

    Verifies P keyed passes of one spec over a single pass through the
    stream: every chunk is tallied for all P keys at once through the
    fused multi-pass kernel (all passes share the chunk's key-column
    factorization by construction), and P accumulators carry the per-pass
    vote state.  Results are bit-identical to a loop of in-memory
    :func:`~repro.core.verify` calls over the concatenated rows.

    ``workers`` fans the fused per-chunk tally work across a persistent
    process pool; ordered accumulator merges keep every pass's verdict
    bit-identical to ``workers=1``.
    """
    keys = list(keys)
    expecteds = list(expecteds)
    if len(keys) != len(expecteds):
        raise DetectionError(
            f"{len(keys)} keys but {len(expecteds)} expected watermarks"
        )
    maps: Sequence[dict[Hashable, int] | None]
    maps = (
        list(embedding_maps) if embedding_maps is not None
        else [None] * len(keys)
    )
    if len(maps) != len(keys):
        raise DetectionError(
            f"{len(keys)} keys but {len(maps)} embedding maps"
        )
    for embedding_map in maps:
        _check_map_inputs(spec, embedding_map)
    for expected in expecteds:
        if len(expected) != spec.watermark_length:
            raise DetectionError(
                f"expected watermark has {len(expected)} bits, spec says "
                f"{spec.watermark_length}"
            )
    chunk_size = _source_chunk_size(source)
    if isinstance(backend, HashEngine):
        raise StreamError(
            "stream_verify_multipass needs one engine per pass; pass a "
            "backend sentinel instead"
        )
    resolved_pairs = [
        _resolve_stream_backend(backend, key, chunk_size) for key in keys
    ]
    engines = [engine for engine, _ in resolved_pairs]
    mode = resolved_pairs[0][1] if resolved_pairs else AUTO
    resolved = _resolve_stream_domain(domain, source, spec)

    from .parallel import resolve_workers

    worker_count = resolve_workers(workers)
    pass_count = len(keys)
    if worker_count > 1:
        from .parallel import parallel_votes, resolve_watchdog

        reliability = ReliabilityReport()
        accumulators, _, _, _ = parallel_votes(
            source, keys, spec,
            maps=maps, domain=resolved, value_mapping=value_mapping,
            mode=mode, chunk_size=chunk_size, workers=worker_count,
            retry=retry, deadline=deadline,
            watchdog=resolve_watchdog(watchdog), breaker=None,
            reliability=reliability,
        )
        ecc = spec.ecc()
        return [
            _assemble_verification(
                accumulator.detection(spec, ecc=ecc), expected,
                significance,
            )
            for accumulator, expected in zip(accumulators, expecteds)
        ]
    accumulators = [
        VoteAccumulator(spec.channel_length) for _ in range(pass_count)
    ]
    reliability = ReliabilityReport()
    chunks_seen = 0
    for chunk in _chunks_with_retry(source, 0, retry, reliability):
        check_deadline(deadline, "pipeline.chunk", chunks_seen)
        chunks_seen += 1
        if resolved is None:
            resolved = chunk.schema.attribute(spec.mark_attribute).domain
        if resolved is None:
            raise DetectionError(
                f"no categorical domain available for "
                f"{spec.mark_attribute!r}"
            )
        if pass_count > 1 and _vector_chunk(mode, chunk):
            tallies = kernels.detect_multipass_votes(
                [chunk] * pass_count,
                spec,
                [resolved] * pass_count,
                maps if spec.variant == VARIANT_MAP else None,
                value_mapping,
                engines,
            )
            for accumulator, tally in zip(accumulators, tallies):
                accumulator.add(SlotVotes.from_arrays(*tally))
        else:
            for accumulator, pass_key, pass_engine, embedding_map in zip(
                accumulators, keys, engines, maps
            ):
                accumulator.add(
                    _chunk_votes(
                        chunk, pass_key, spec, embedding_map, resolved,
                        value_mapping, pass_engine, mode,
                    )
                )
    ecc = spec.ecc()
    return [
        _assemble_verification(
            accumulator.detection(spec, ecc=ecc), expected, significance
        )
        for accumulator, expected in zip(accumulators, expecteds)
    ]
