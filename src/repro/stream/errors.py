"""Errors of the out-of-core streaming subsystem."""

from __future__ import annotations


class StreamError(Exception):
    """A streaming pipeline was misconfigured or fed inconsistent state."""


class CheckpointError(StreamError):
    """A checkpoint file is unreadable or belongs to a different run."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint payload failed CRC or schema-version verification.

    Distinct from a *missing* checkpoint: corruption means the file was
    written and then damaged (torn write, bit rot, a crash mid-rename),
    and resuming from it would silently produce a half-marked relation.
    The error names the file and the byte offset where verification
    failed so operators can inspect the damage; resume falls back to the
    last verified (``.prev``) checkpoint when one survives.
    """

    def __init__(self, path, reason: str, offset: int = 0):
        self.path = str(path)
        self.reason = reason
        self.offset = offset
        super().__init__(
            f"corrupt checkpoint {self.path} (offset {offset}): {reason}"
        )


class BadRowError(StreamError, ValueError):
    """A CSV record could not be parsed under the declared schema.

    Subclasses ``ValueError`` for compatibility with the historical
    ``parse_row`` arity error; carries the 1-based data-row number so
    ``on_bad_rows='quarantine'`` sidecars and error messages can point
    at the exact line.
    """

    def __init__(self, path, number: int, reason: str):
        self.path = str(path)
        self.number = number
        self.reason = reason
        super().__init__(f"{self.path}: bad CSV row {number}: {reason}")

    def __reduce__(self):
        # Exceptions pickle as ``cls(*args)`` by default, which would
        # re-call this three-argument __init__ with just the message;
        # parallel workers raise BadRowError across the process boundary,
        # so spell out the real constructor arguments.
        return (BadRowError, (self.path, self.number, self.reason))
