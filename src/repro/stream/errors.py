"""Errors of the out-of-core streaming subsystem."""

from __future__ import annotations


class StreamError(Exception):
    """A streaming pipeline was misconfigured or fed inconsistent state."""


class CheckpointError(StreamError):
    """A checkpoint file is unreadable or belongs to a different run."""
