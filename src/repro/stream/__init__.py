"""Out-of-core streaming subsystem: chunked mark/detect over on-disk
relations.

The scheme's per-tuple decisions are pure functions of a keyed hash of
the tuple's key value, so marking and detection chunk perfectly:

* **sources** — :class:`ChunkSource` readers (CSV incl. gzip, SQLite,
  ``datagen``-backed synthetic streams) yield schema-typed
  :class:`~repro.relational.Table` chunks;
* **pipelines** — :func:`stream_mark` maps chunks through the existing
  embed kernels into a :class:`ChunkSink` (checkpointed, resumable);
  :func:`stream_verify` / :func:`stream_verify_multipass` merge per-chunk
  vote tallies in O(chunk + channel) memory, bit-identical to the
  in-memory detector on the concatenated rows.

Opens the million-row / on-disk workload class the in-memory
:class:`~repro.relational.Table` paths cap out on.
"""

from .checkpoint import (
    MarkCheckpoint,
    load_checkpoint,
    load_verified_checkpoint,
    mark_fingerprint,
    save_checkpoint,
)
from .errors import (
    BadRowError,
    CheckpointCorruptError,
    CheckpointError,
    StreamError,
)
from .pipeline import (
    StreamDetection,
    StreamMarkResult,
    StreamVerification,
    stream_detect,
    stream_engine,
    stream_mark,
    stream_verify,
    stream_verify_multipass,
)
from .sinks import (
    ChunkSink,
    CSVChunkSink,
    NullChunkSink,
    SQLiteChunkSink,
    TableChunkSink,
    open_sink,
)
from .sources import (
    DEFAULT_CHUNK_SIZE,
    ChunkSource,
    CSVChunkSource,
    SQLiteChunkSource,
    SyntheticChunkSource,
    TableChunkSource,
    count_data_rows,
    item_scan_source,
    open_source,
)

__all__ = [
    "BadRowError",
    "CSVChunkSink",
    "CSVChunkSource",
    "CheckpointCorruptError",
    "CheckpointError",
    "ChunkSink",
    "ChunkSource",
    "DEFAULT_CHUNK_SIZE",
    "MarkCheckpoint",
    "NullChunkSink",
    "SQLiteChunkSink",
    "SQLiteChunkSource",
    "StreamDetection",
    "StreamError",
    "StreamMarkResult",
    "StreamVerification",
    "SyntheticChunkSource",
    "TableChunkSink",
    "TableChunkSource",
    "count_data_rows",
    "item_scan_source",
    "load_checkpoint",
    "load_verified_checkpoint",
    "mark_fingerprint",
    "open_sink",
    "open_source",
    "save_checkpoint",
    "stream_detect",
    "stream_engine",
    "stream_mark",
    "stream_verify",
    "stream_verify_multipass",
]
