"""Out-of-core streaming subsystem: chunked mark/detect over on-disk
relations.

The scheme's per-tuple decisions are pure functions of a keyed hash of
the tuple's key value, so marking and detection chunk perfectly:

* **sources** — :class:`ChunkSource` readers (CSV incl. gzip, SQLite,
  ``datagen``-backed synthetic streams) yield schema-typed
  :class:`~repro.relational.Table` chunks;
* **pipelines** — :func:`stream_mark` maps chunks through the existing
  embed kernels into a :class:`ChunkSink` (checkpointed, resumable);
  :func:`stream_verify` / :func:`stream_verify_multipass` merge per-chunk
  vote tallies in O(chunk + channel) memory, bit-identical to the
  in-memory detector on the concatenated rows;
* **parallel** — ``workers=N`` (or ``"auto"``) fans chunk decode + kernel
  work across a persistent process pool with ordered, bit-identical
  merge/commit (see :mod:`repro.stream.parallel`).

Opens the million-row / on-disk workload class the in-memory
:class:`~repro.relational.Table` paths cap out on.
"""

from .checkpoint import (
    MarkCheckpoint,
    load_checkpoint,
    load_verified_checkpoint,
    mark_fingerprint,
    save_checkpoint,
)
from .errors import (
    BadRowError,
    CheckpointCorruptError,
    CheckpointError,
    StreamError,
)
from .parallel import (
    AUTO_WORKERS,
    ParallelReport,
    resolve_workers,
    shutdown_stream_pool,
)
from .pipeline import (
    StreamDetection,
    StreamMarkResult,
    StreamVerification,
    stream_detect,
    stream_engine,
    stream_mark,
    stream_verify,
    stream_verify_multipass,
)
from .sinks import (
    ChunkSink,
    CSVChunkSink,
    NullChunkSink,
    SQLiteChunkSink,
    TableChunkSink,
    open_sink,
)
from .sources import (
    DEFAULT_CHUNK_SIZE,
    ChunkSource,
    ChunkTask,
    CSVChunkSource,
    MultiFileChunkSource,
    SQLiteChunkSource,
    SyntheticChunkSource,
    TableChunkSource,
    count_data_rows,
    item_scan_source,
    open_source,
    open_sources,
    payload_chunks,
)

__all__ = [
    "AUTO_WORKERS",
    "BadRowError",
    "CSVChunkSink",
    "CSVChunkSource",
    "CheckpointCorruptError",
    "CheckpointError",
    "ChunkSink",
    "ChunkSource",
    "ChunkTask",
    "DEFAULT_CHUNK_SIZE",
    "MarkCheckpoint",
    "MultiFileChunkSource",
    "NullChunkSink",
    "ParallelReport",
    "SQLiteChunkSink",
    "SQLiteChunkSource",
    "StreamDetection",
    "StreamError",
    "StreamMarkResult",
    "StreamVerification",
    "SyntheticChunkSource",
    "TableChunkSink",
    "TableChunkSource",
    "count_data_rows",
    "item_scan_source",
    "load_checkpoint",
    "load_verified_checkpoint",
    "mark_fingerprint",
    "open_sink",
    "open_source",
    "open_sources",
    "payload_chunks",
    "resolve_workers",
    "save_checkpoint",
    "shutdown_stream_pool",
    "stream_detect",
    "stream_engine",
    "stream_mark",
    "stream_verify",
    "stream_verify_multipass",
]
