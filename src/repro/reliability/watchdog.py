"""Watchdog: detect and kill *hung* pool workers, not just dead ones.

PR 6's pool recovery handles workers that die (``BrokenExecutor`` →
respawn → re-dispatch, bit-identical under the per-seed rng labels).  A
worker that *hangs* — stuck syscall, pathological input, an injected
``hang`` fault — never breaks the executor; without a watchdog the
parent blocks in ``future.result()`` forever.

The protocol is deliberately primitive, because it must survive the
exact failure it polices:

* **heartbeats** — each worker writes a per-PID file in a pool-scoped
  heartbeat directory (:func:`beat`) at every cell boundary (state
  ``"busy"``) and once more when its task returns (state ``"idle"``).
  A file's mtime is crash-proof shared state: no locks, no pipes a hung
  process could stop draining.
* **staleness** — the parent, while polling ``future.result(timeout=
  poll)``, asks the :class:`Watchdog` for workers whose last beat said
  ``"busy"`` and is older than ``budget`` seconds.  Idle workers (done
  early, waiting for the slow one) and workers that never beat (spares
  the executor never fed) are *not* stale — killing a healthy worker
  would break the executor for nothing.  A worker hung before its first
  beat is the deadline's problem, not the watchdog's.
* **kill + respawn** — stale workers get ``SIGKILL``; the broken
  executor then takes PR 6's existing respawn path and the lost seeds
  are re-dispatched bit-identically.  Kills are counted as
  ``watchdog_kills`` in the engine's reliability report.

The budget is a *silence* budget, not a task budget: a worker crunching
a huge cell keeps beating at cell boundaries and is never killed.
"""

from __future__ import annotations

import os
import signal
import time

#: heartbeat states a worker reports
BUSY = "busy"
IDLE = "idle"


def beat(
    heartbeat_dir: str | None,
    pid: int | None = None,
    state: str = BUSY,
) -> None:
    """Worker-side heartbeat: write this process's state file in the
    pool's heartbeat directory.  Best-effort — a failed beat must never
    fail the task (the watchdog kills quiet workers; dying of a full
    disk here would be self-fulfilling)."""
    if heartbeat_dir is None:
        return
    path = os.path.join(heartbeat_dir, str(pid or os.getpid()))
    try:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(state)
    except OSError:  # pragma: no cover — best-effort by contract
        pass


class Watchdog:
    """Parent-side staleness policy over a pool heartbeat directory."""

    def __init__(self, budget: float = 300.0, poll: float = 1.0):
        if budget <= 0.0:
            raise ValueError(f"budget must be positive seconds, got {budget}")
        if poll <= 0.0:
            raise ValueError(f"poll must be positive seconds, got {poll}")
        #: seconds of mid-task silence after which a worker is presumed hung
        self.budget = budget
        #: how often the parent's result wait wakes to scan for staleness
        self.poll = poll

    def start_round(self) -> None:
        """Mark a dispatch round (kept for call-site symmetry; staleness
        is measured purely from busy beats)."""

    def last_beat(self, heartbeat_dir: str, pid: int) -> tuple[float, str]:
        """``(epoch mtime, state)`` of ``pid``'s last heartbeat, or
        ``(0.0, IDLE)`` when the worker never beat.

        A torn read (the worker is rewriting the file right now) reports
        ``BUSY`` — conservative, but harmless: the fresh mtime keeps the
        worker under budget.
        """
        path = os.path.join(heartbeat_dir, str(pid))
        try:
            mtime = os.path.getmtime(path)
            with open(path, encoding="ascii") as handle:
                state = handle.read().strip() or BUSY
        except OSError:
            return 0.0, IDLE
        return mtime, state

    def stale_pids(self, heartbeat_dir: str, pids: list[int]) -> list[int]:
        """Workers mid-task and silent past the budget."""
        now = time.time()
        stale = []
        for pid in pids:
            mtime, state = self.last_beat(heartbeat_dir, pid)
            if state == BUSY and now - mtime > self.budget:
                stale.append(pid)
        return stale

    def kill(self, pids: list[int]) -> list[int]:
        """``SIGKILL`` each pid; returns those actually signalled."""
        killed = []
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            killed.append(pid)
        return killed

    def kill_stale(self, heartbeat_dir: str, pids: list[int]) -> list[int]:
        """Scan-and-kill in one step; returns the pids killed."""
        return self.kill(self.stale_pids(heartbeat_dir, pids))

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"Watchdog(budget={self.budget}, poll={self.poll})"
