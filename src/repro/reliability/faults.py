"""Deterministic fault injection: break the pipeline on purpose.

Recovery code that has never seen a failure is untested code.  This
module lets the test suite (and the chaos benches) schedule *precise*
failures — an ``IOError`` on chunk 3's sink write, a torn gzip member on
flush 2, a corrupted checkpoint payload, a ``SIGKILL`` at a chunk
boundary, a dead pool worker on seed 1 — and then assert that the
retry/recovery layer restores a byte-identical outcome.

Design rules, mirroring the repo's determinism contract:

* **Label-addressed** — every injection point has a literal label
  (``"sink.write"``, ``"source.read"``, ``"checkpoint.save"``,
  ``"pool.worker"``, ...) and a zero-based index (chunk index, seed);
  a :class:`FaultPlan` schedules fault *kinds* at ``(label, index)``
  addresses with a bounded trigger count, so fault sequences are
  order-independent and reproducible run to run.
* **Seeded** — any randomness a fault needs (how many rows of a torn
  write survive) comes from ``random.Random(f"fault:{seed}:{label}:
  {index}")``, the same literal-label rng contract the attack sweep
  uses.
* **Zero overhead disarmed** — production code consults
  :func:`fault_point` (one module-global ``None`` check per *chunk*,
  never per row) and :func:`injection_armed` guards any
  fault-preparation work, so an unarmed pipeline pays nothing.

Faults are injected *through the same exceptions real failures raise*
(:class:`InjectedFaultError` is an ``OSError``), so the retry layer
cannot special-case them.
"""

from __future__ import annotations

import errno
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: raise an OSError (EIO) at the injection point — the generic
#: transient-I/O failure
IO_ERROR = "io-error"

#: cooperative: the injection point persists a *partial* write (a half
#: chunk, a prefix of a JSON payload) and then fails
TORN_WRITE = "torn-write"

#: cooperative: a gzip sink flushes a member with no trailer (compressed
#: bytes on disk, stream not closed) and then fails
TRUNCATED_GZIP = "truncated-gzip"

#: cooperative: a JSON payload is written bit-rotted but syntactically
#: plausible — the "silently corrupted checkpoint" case CRC verification
#: exists to catch
CORRUPT_JSON = "corrupt-json"

#: the process dies on the spot (``SIGKILL`` — no atexit, no flush), or a
#: pool worker is instructed to die mid-task
KILL = "kill"

#: stall: the injection point sleeps :attr:`FaultPlan.hang_seconds` and
#: then continues — in-process, recovery is the *deadline's* job (the
#: next chunk/cell boundary raises); in a pool worker, the watchdog's
HANG = "hang"

#: throttled I/O: the injection point sleeps :attr:`FaultPlan
#: .slow_seconds` and continues — the degraded-but-alive dependency a
#: deadline must tolerate without tripping
SLOW = "slow"

#: exhaustion: the injection point raises ``MemoryError`` — the trigger
#: for :class:`~repro.reliability.budget.MemoryBudget` shrink/replay and
#: for the transient-retry path at the I/O points
MEMORY = "memory"

#: cooperative: silent media damage — the injection point corrupts one
#: already-flushed byte (a written chunk, a journal line, a read record)
#: and then *continues as if nothing happened*.  No error is raised; the
#: corruption must be caught downstream by the chunk-hash manifest
#: (:mod:`~repro.reliability.integrity`), never by the retry layer.
BITFLIP = "bitflip"

#: the disk filled: an ``OSError`` with ``errno=ENOSPC`` at a
#: write/flush point.  Classified *permanent* — a full disk does not
#: heal between retry attempts — so the run stops gracefully at the
#: last durable boundary and resumes after the operator frees space.
DISK_FULL = "disk-full"

KINDS = (
    IO_ERROR, TORN_WRITE, TRUNCATED_GZIP, CORRUPT_JSON, KILL,
    HANG, SLOW, MEMORY, BITFLIP, DISK_FULL,
)

#: kinds :func:`fault_point` resolves itself; the rest are returned to
#: the (cooperating) injection point
_SELF_SERVICE = (IO_ERROR, KILL, HANG, SLOW, MEMORY, DISK_FULL)


class InjectedFaultError(OSError):
    """The transient I/O failure a :class:`FaultPlan` injects.

    An ``OSError`` with ``errno=EIO`` (``ENOSPC`` for :data:`DISK_FULL`),
    so retry classification treats it exactly like a real disk error —
    no test-only code path in the recovery layer.
    """

    def __init__(
        self, label: str, index: int, kind: str = IO_ERROR,
        err: int = errno.EIO,
    ):
        self.label = label
        self.index = index
        self.kind = kind
        super().__init__(
            err, f"injected {kind} fault at {label}[{index}]"
        )


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: ``kind`` at ``(label, index)``, firing at
    most ``times`` times before the address exhausts."""

    label: str
    index: int
    kind: str
    times: int = 1


class FaultPlan:
    """A seeded schedule of failures, consulted by injection points.

    Plans are built once (``add`` chains), armed around the code under
    test (:meth:`armed`, or process-globally via :func:`arm`), and
    consumed as the pipeline hits the scheduled addresses.  ``times``
    bounds every address, so a recovered retry of the same chunk runs
    clean — exactly how a transient real-world fault behaves.
    """

    def __init__(
        self,
        seed: int | str = 0,
        hang_seconds: float = 60.0,
        slow_seconds: float = 0.05,
    ):
        self.seed = seed
        #: how long a :data:`HANG` fault stays silent (tests shrink it;
        #: a hung pool worker is SIGKILLed by the watchdog mid-sleep)
        self.hang_seconds = hang_seconds
        #: per-trigger delay of a :data:`SLOW` fault
        self.slow_seconds = slow_seconds
        self._pending: dict[tuple[str, int], list] = {}
        #: telemetry: (label, index, kind) triples actually fired
        self.fired: list[tuple[str, int, str]] = []

    def add(
        self, label: str, kind: str, at: int = 0, times: int = 1
    ) -> "FaultPlan":
        """Schedule ``kind`` at ``(label, at)``; returns ``self``."""
        if kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, got {kind!r}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self._pending[(label, int(at))] = [kind, times]
        return self

    def scheduled(self, label: str, index: int) -> bool:
        """Is a fault still pending at ``(label, index)``?  (Peek — does
        not consume a trigger.)"""
        return (label, int(index)) in self._pending

    def draw(self, label: str, index: int) -> str | None:
        """Consume one trigger at ``(label, index)``: its kind, or
        ``None`` when nothing (or nothing *left*) is scheduled there."""
        entry = self._pending.get((label, int(index)))
        if entry is None:
            return None
        kind, remaining = entry
        if remaining <= 1:
            del self._pending[(label, int(index))]
        else:
            entry[1] = remaining - 1
        self.fired.append((label, int(index), kind))
        return kind

    def rng(self, label: str, index: int) -> random.Random:
        """The private generator of fault ``(label, index)`` — the
        literal-label contract, so torn-write cut points etc. reproduce."""
        return random.Random(f"fault:{self.seed}:{label}:{index}")

    def pending(self) -> int:
        """Total triggers not yet fired (assert == 0 to prove a chaos
        scenario exercised its whole schedule)."""
        return sum(entry[1] for entry in self._pending.values())

    @contextmanager
    def armed(self):
        """Arm this plan process-globally for the ``with`` body."""
        previous = arm(self)
        try:
            yield self
        finally:
            arm(previous)


# The single process-global armed plan.  Injection points read it with
# one attribute lookup; ``None`` (the production state) short-circuits
# everything.
_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the armed plan; returns the previous one."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def disarm() -> None:
    """Remove any armed plan (the production state)."""
    arm(None)


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _PLAN


def injection_armed() -> bool:
    """Cheap guard for fault-preparation work (flushes, row splitting)
    that only a *scheduled* fault needs."""
    return _PLAN is not None


def fault_point(label: str, index: int) -> str | None:
    """Declare an injection point; acts on any fault scheduled here.

    Disarmed (no plan): a single ``None`` check, nothing else.  Armed:
    consumes at most one trigger at ``(label, index)`` and

    * raises :class:`InjectedFaultError` for :data:`IO_ERROR`,
    * ``SIGKILL``-s the process for :data:`KILL` (never returns),
    * sleeps through :data:`HANG` / :data:`SLOW` (``plan.hang_seconds``
      / ``plan.slow_seconds``) and then *continues* — stall faults are
      for the deadline/watchdog layer to observe, not errors,
    * raises ``MemoryError`` for :data:`MEMORY`,
    * raises :class:`InjectedFaultError` with ``errno=ENOSPC`` for
      :data:`DISK_FULL` — the graceful-stop path, never retried,
    * returns the kind for the cooperative faults (:data:`TORN_WRITE`,
      :data:`TRUNCATED_GZIP`, :data:`CORRUPT_JSON`, :data:`BITFLIP`) —
      the injection point itself performs the partial/corrupted write
      and then fails (or, for :data:`BITFLIP`, silently continues).
    """
    plan = _PLAN
    if plan is None:
        return None
    kind = plan.draw(label, index)
    if kind is None:
        return None
    if kind == KILL:
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover — fatal
    if kind == IO_ERROR:
        raise InjectedFaultError(label, index)
    if kind == DISK_FULL:
        raise InjectedFaultError(label, index, DISK_FULL, errno.ENOSPC)
    if kind == HANG:
        time.sleep(plan.hang_seconds)
        return None
    if kind == SLOW:
        time.sleep(plan.slow_seconds)
        return None
    if kind == MEMORY:
        raise MemoryError(f"injected memory fault at {label}[{index}]")
    return kind
