"""Wall-clock deadlines: stall-safety's cooperative time budget.

Crash-safety (PR 6) bounds *failures*; a deadline bounds *time*.  A
:class:`Deadline` is a monotonic wall-clock budget threaded through the
streaming pipelines and the sweep engine, checked cooperatively at chunk
and cell boundaries (one ``is not None`` test plus one
``time.monotonic()`` call — cheap enough for the hot path, see
``bench_reliability.py``) and passed as the timeout of every pool
``future.result()``.

Expiry raises :class:`DeadlineExceededError` carrying the *resumable
position* — the number of chunks (or sweep cells) already durable — so a
checkpointed run can be continued with a fresh budget and produce output
byte-identical to an uninterrupted run.  The error is classified
*permanent* by the retry taxonomy (deliberately: retrying a run that ran
out of time inside the same budget would loop), and maps to CLI exit
code 7.
"""

from __future__ import annotations

import time


class DeadlineExceededError(Exception):
    """A run outlived its wall-clock budget.

    ``position`` is the resumable progress marker at the boundary where
    expiry was observed: for streamed runs the number of *durable*
    chunks (a checkpointed run resumes exactly there), for pooled sweeps
    the number of completed seed tasks.
    """

    def __init__(
        self,
        label: str,
        position: int,
        budget: float,
        elapsed: float,
    ):
        self.label = label
        self.position = position
        self.budget = budget
        self.elapsed = elapsed
        super().__init__(
            f"deadline of {budget:.6g}s exceeded at {label}[{position}] "
            f"after {elapsed:.6g}s"
        )


class Deadline:
    """A monotonic wall-clock budget with a remaining/expired API.

    Built once per run (``Deadline(seconds)`` or :meth:`after`), never
    reset: resuming a run means building a fresh deadline, exactly like
    re-invoking the CLI with ``--deadline`` after an exit-code-7 stop.
    """

    __slots__ = ("budget", "_started", "_expires_at")

    def __init__(self, budget: float):
        if not budget > 0.0:
            raise ValueError(
                f"deadline budget must be positive seconds, got {budget!r}"
            )
        self.budget = float(budget)
        self._started = time.monotonic()
        self._expires_at = self._started + self.budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """``Deadline(seconds)``, reading like the call site means it."""
        return cls(seconds)

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.monotonic() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget, floored at zero."""
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def timeout(self, cap: float | None = None) -> float:
        """The budget's remainder as a blocking-call timeout.

        ``cap`` bounds the wait (a watchdog poll interval, a retry
        backoff ceiling); the result is never negative, so an expired
        deadline turns blocking waits into immediate-timeout polls.
        """
        remaining = self.remaining()
        if cap is None:
            return remaining
        return min(remaining, cap)

    def check(self, label: str, position: int = 0) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(
                label, position, self.budget, self.elapsed()
            )

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"Deadline(budget={self.budget!r}, "
            f"remaining={self.remaining():.6g})"
        )


def check_deadline(
    deadline: Deadline | None, label: str, position: int = 0
) -> None:
    """The hot-path boundary check: free when no deadline is armed.

    Disarmed (``deadline is None`` — the production default) this is a
    single ``None`` test, mirroring the disarmed
    :func:`~repro.reliability.faults.fault_point` contract; the
    reliability bench holds both under a microsecond per call.
    """
    if deadline is not None:
        deadline.check(label, position)
