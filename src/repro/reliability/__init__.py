"""Fault injection + crash-safe retry/recovery for the long-running paths.

The §5 protocol claims only hold if a multi-hour streaming mark/detect
run actually completes and its checkpoints can be trusted.  This package
makes recovery *provable* instead of hoped-for:

* :mod:`~repro.reliability.faults` — a seeded, label-addressed
  :class:`FaultPlan` that injection points across ``repro.stream`` and
  the sweep pool consult, raising deterministic ``IOError``/torn-write/
  truncated-gzip/corrupted-JSON/``SIGKILL`` faults at chosen chunk or
  cell indices (zero overhead when no plan is armed);
* :mod:`~repro.reliability.retry` — a :class:`RetryPolicy` (bounded
  attempts, exponential backoff, deterministic jitter) plus the shared
  transient/permanent fault taxonomy, applied at every I/O boundary;
* :mod:`~repro.reliability.report` — a :class:`ReliabilityReport`
  counting every retry, rollback, respawn and fallback, because silent
  recovery is indistinguishable from silent degradation;
* :mod:`~repro.reliability.deadline` — a monotonic wall-clock
  :class:`Deadline` checked at chunk/cell boundaries, raising
  :class:`DeadlineExceededError` with a resumable position (exit code 7);
* :mod:`~repro.reliability.watchdog` — heartbeat-based detection and
  ``SIGKILL`` of *hung* (not just dead) pool workers;
* :mod:`~repro.reliability.budget` — a :class:`MemoryBudget` that halves
  the effective chunk size and replays on breach or ``MemoryError``,
  regrowing after sustained headroom;
* :mod:`~repro.reliability.breaker` — a :class:`CircuitBreaker` opening
  after K consecutive transient failures on one label, steering runs
  down the bit-identical degradation ladders instead of retrying
  forever;
* :mod:`~repro.reliability.integrity` — chunk-hash manifests journalled
  next to the checkpoint, :func:`audit_stream` corruption localization,
  verified (re-hashing) resume, and the :class:`RunLock` lease that
  makes concurrent embed/resume exactly-once.

The chaos suite (``pytest -m chaos``) kills real subprocesses at every
chunk boundary and asserts resumed runs are byte-identical to
uninterrupted ones — the enumerate-every-reachable-failure-state
discipline applied to the streaming layer.
"""

from .breaker import CircuitBreaker
from .budget import MemoryBudget, rss_bytes
from .deadline import Deadline, DeadlineExceededError, check_deadline
from .faults import (
    BITFLIP,
    CORRUPT_JSON,
    DISK_FULL,
    Fault,
    FaultPlan,
    HANG,
    IO_ERROR,
    InjectedFaultError,
    KILL,
    KINDS,
    MEMORY,
    SLOW,
    TORN_WRITE,
    TRUNCATED_GZIP,
    active_plan,
    arm,
    disarm,
    fault_point,
    injection_armed,
)
from .integrity import (
    AuditReport,
    ChunkDigest,
    ChunkManifest,
    IntegrityError,
    RunLock,
    RunLockedError,
    audit_stream,
    digest_rows,
    journal_path,
)
from .report import ReliabilityReport
from .retry import (
    NO_RETRY,
    PERMANENT,
    RetryError,
    RetryPolicy,
    TRANSIENT,
    call_with_retry,
    classify,
)
from .watchdog import Watchdog, beat

__all__ = [
    "AuditReport",
    "BITFLIP",
    "CORRUPT_JSON",
    "ChunkDigest",
    "ChunkManifest",
    "CircuitBreaker",
    "DISK_FULL",
    "Deadline",
    "DeadlineExceededError",
    "Fault",
    "FaultPlan",
    "IntegrityError",
    "HANG",
    "IO_ERROR",
    "InjectedFaultError",
    "KILL",
    "KINDS",
    "MEMORY",
    "MemoryBudget",
    "NO_RETRY",
    "PERMANENT",
    "ReliabilityReport",
    "RetryError",
    "RetryPolicy",
    "RunLock",
    "RunLockedError",
    "SLOW",
    "TORN_WRITE",
    "TRANSIENT",
    "TRUNCATED_GZIP",
    "Watchdog",
    "active_plan",
    "arm",
    "audit_stream",
    "beat",
    "call_with_retry",
    "check_deadline",
    "classify",
    "digest_rows",
    "disarm",
    "fault_point",
    "injection_armed",
    "journal_path",
    "rss_bytes",
]
