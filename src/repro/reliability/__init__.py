"""Fault injection + crash-safe retry/recovery for the long-running paths.

The §5 protocol claims only hold if a multi-hour streaming mark/detect
run actually completes and its checkpoints can be trusted.  This package
makes recovery *provable* instead of hoped-for:

* :mod:`~repro.reliability.faults` — a seeded, label-addressed
  :class:`FaultPlan` that injection points across ``repro.stream`` and
  the sweep pool consult, raising deterministic ``IOError``/torn-write/
  truncated-gzip/corrupted-JSON/``SIGKILL`` faults at chosen chunk or
  cell indices (zero overhead when no plan is armed);
* :mod:`~repro.reliability.retry` — a :class:`RetryPolicy` (bounded
  attempts, exponential backoff, deterministic jitter) plus the shared
  transient/permanent fault taxonomy, applied at every I/O boundary;
* :mod:`~repro.reliability.report` — a :class:`ReliabilityReport`
  counting every retry, rollback, respawn and fallback, because silent
  recovery is indistinguishable from silent degradation.

The chaos suite (``pytest -m chaos``) kills real subprocesses at every
chunk boundary and asserts resumed runs are byte-identical to
uninterrupted ones — the enumerate-every-reachable-failure-state
discipline applied to the streaming layer.
"""

from .faults import (
    CORRUPT_JSON,
    Fault,
    FaultPlan,
    IO_ERROR,
    InjectedFaultError,
    KILL,
    KINDS,
    TORN_WRITE,
    TRUNCATED_GZIP,
    active_plan,
    arm,
    disarm,
    fault_point,
    injection_armed,
)
from .report import ReliabilityReport
from .retry import (
    NO_RETRY,
    PERMANENT,
    RetryError,
    RetryPolicy,
    TRANSIENT,
    call_with_retry,
    classify,
)

__all__ = [
    "CORRUPT_JSON",
    "Fault",
    "FaultPlan",
    "IO_ERROR",
    "InjectedFaultError",
    "KILL",
    "KINDS",
    "NO_RETRY",
    "PERMANENT",
    "ReliabilityReport",
    "RetryError",
    "RetryPolicy",
    "TORN_WRITE",
    "TRANSIENT",
    "TRUNCATED_GZIP",
    "active_plan",
    "arm",
    "call_with_retry",
    "classify",
    "disarm",
    "fault_point",
    "injection_armed",
]
