"""Memory budgets: adapt chunk granularity instead of dying on exhaustion.

A long streamed run's working set is O(chunk), but "chunk" is a guess
made at launch; a :class:`MemoryBudget` turns that guess into a feedback
loop.  The pipeline consults the budget at chunk boundaries:

* **sampling** — :meth:`sample` reads current usage from ``tracemalloc``
  when tracing is active (the bench suite's configuration) and from the
  process RSS (``/proc/self/statm``) otherwise; sampling happens per
  *chunk*, never per row;
* **shrink** — on a budget breach, or on a ``MemoryError`` raised while
  embedding a chunk, the effective chunk size is halved
  (:meth:`shrink` doubles the slice ``factor``) and the chunk is
  *replayed* in slices.  Because every embedding decision is a pure
  function of the keyed hash of one tuple, slicing a chunk is
  cell-identical to processing it whole — the sink still receives the
  original chunk as a single write, so output bytes (including gzip
  member framing) never change;
* **regrow** — after :attr:`regrow_after` consecutive healthy chunks the
  factor halves back toward 1, so a transient pressure spike does not
  pin the rest of a million-chunk run at the smallest granularity.

Shrink/regrow events are counted in the run's
:class:`~repro.reliability.report.ReliabilityReport`
(``chunk_shrinks`` / ``chunk_regrows``) and kept, with causes, in
:attr:`MemoryBudget.events`.
"""

from __future__ import annotations

import os
import tracemalloc


def rss_bytes() -> int:
    """Current resident set size, or 0 where ``/proc`` is unavailable."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


class MemoryBudget:
    """Per-chunk memory governor with halve-on-breach / regrow semantics.

    ``limit_bytes=None`` (the default) disables proactive sampling but
    keeps the reactive half: a ``MemoryError`` during chunk processing
    still shrinks and replays.  ``max_factor`` bounds how far the
    effective chunk size can halve (beyond it the failure propagates —
    a budget that cannot be met by slicing is a real exhaustion).
    """

    def __init__(
        self,
        limit_bytes: int | None = None,
        regrow_after: int = 2,
        max_factor: int = 64,
    ):
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError(
                f"limit_bytes must be positive or None, got {limit_bytes}"
            )
        if regrow_after < 1:
            raise ValueError(
                f"regrow_after must be >= 1, got {regrow_after}"
            )
        if max_factor < 1:
            raise ValueError(f"max_factor must be >= 1, got {max_factor}")
        self.limit_bytes = limit_bytes
        self.regrow_after = regrow_after
        self.max_factor = max_factor
        #: current slice multiplier: a chunk is processed in ``factor``
        #: sub-slices (1 = whole-chunk, the healthy steady state)
        self.factor = 1
        self._healthy_streak = 0
        #: telemetry: ``(action, cause, factor_after)`` triples
        self.events: list[tuple[str, str, int]] = []

    def sample(self) -> int:
        """Current memory usage in bytes (tracemalloc when tracing,
        process RSS otherwise)."""
        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0]
        return rss_bytes()

    def over_budget(self) -> bool:
        """Is current usage above the configured limit?  (Always false
        without a limit — the reactive ``MemoryError`` path still runs.)"""
        if self.limit_bytes is None:
            return False
        return self.sample() > self.limit_bytes

    def shrink(self, cause: str) -> bool:
        """Halve the effective chunk size; false when already at the
        ``max_factor`` floor (the caller must let the failure propagate)."""
        if self.factor >= self.max_factor:
            return False
        self.factor *= 2
        self._healthy_streak = 0
        self.events.append(("shrink", cause, self.factor))
        return True

    def note_healthy(self) -> bool:
        """Record one chunk processed without breach or ``MemoryError``;
        true when sustained headroom regrew the factor one step."""
        if self.factor == 1:
            return False
        self._healthy_streak += 1
        if self._healthy_streak < self.regrow_after:
            return False
        self.factor //= 2
        self._healthy_streak = 0
        self.events.append(("regrow", "sustained headroom", self.factor))
        return True

    def slices(self, rows: int) -> int:
        """How many sub-slices a ``rows``-row chunk splits into now."""
        return max(1, min(self.factor, rows))

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"MemoryBudget(limit_bytes={self.limit_bytes!r}, "
            f"factor={self.factor}, events={len(self.events)})"
        )
