"""Circuit breaker: stop retrying what keeps failing, degrade instead.

Retry handles *transient* faults; a fault that fires on every attempt is
not transient any more, and burning the whole retry budget against it on
every call turns one sick dependency into a stalled run.  A
:class:`CircuitBreaker` counts **consecutive** transient failures per
label and, at ``threshold``, *opens*: callers consult :meth:`allow` and
take a degradation path instead of dispatching again.

The degradation ladders it guards are the repo's bit-identical ones —
pooled → hoisted → serial sweep modes, VECTOR → ENGINE stream backends —
so an open breaker changes *how fast* a run executes, never *what* it
produces.  Every open/close transition is recorded (with its cause) in
:attr:`transitions` and surfaced through the owning component's
:class:`~repro.reliability.report.ReliabilityReport`
(``breaker_trips``), because silent degradation is the failure mode this
package exists to prevent.

After ``cooldown`` seconds an open circuit becomes *half-open*:
:meth:`allow` admits one trial, a success closes the circuit, a failure
re-opens it for another cooldown.
"""

from __future__ import annotations

import time
from collections.abc import Callable


class CircuitBreaker:
    """Per-label consecutive-failure breaker with cooldown/half-open."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0.0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        #: per-label consecutive failure counts
        self._failures: dict[str, int] = {}
        #: per-label open timestamps (present = open)
        self._opened_at: dict[str, float] = {}
        #: telemetry: ``(label, "open" | "close", cause)`` triples
        self.transitions: list[tuple[str, str, str]] = []

    def record_failure(self, label: str, cause: str = "") -> bool:
        """Count one failure of ``label``; true when this one opened the
        circuit (the transition, not the steady open state)."""
        count = self._failures.get(label, 0) + 1
        self._failures[label] = count
        if label in self._opened_at:
            # A failed half-open trial re-opens for a fresh cooldown.
            self._opened_at[label] = self._clock()
            return False
        if count >= self.threshold:
            self._opened_at[label] = self._clock()
            self.transitions.append((label, "open", cause))
            return True
        return False

    def record_success(self, label: str) -> None:
        """A successful call closes the circuit and resets the count."""
        self._failures[label] = 0
        if self._opened_at.pop(label, None) is not None:
            self.transitions.append((label, "close", "successful call"))

    def is_open(self, label: str) -> bool:
        """Is the circuit currently open (cooldown notwithstanding)?"""
        return label in self._opened_at

    def allow(self, label: str) -> bool:
        """May ``label`` be dispatched?  Closed: yes.  Open: only once
        the cooldown has elapsed (the half-open trial)."""
        opened_at = self._opened_at.get(label)
        if opened_at is None:
            return True
        return self._clock() - opened_at >= self.cooldown

    def trips(self, label: str | None = None) -> int:
        """How many times circuits opened (optionally for one label)."""
        return sum(
            1
            for tr_label, action, _ in self.transitions
            if action == "open" and (label is None or tr_label == label)
        )

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"open={sorted(self._opened_at)})"
        )
