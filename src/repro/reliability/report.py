"""Reliability telemetry: what the recovery layer actually did.

Silent recovery is indistinguishable from silent degradation, so every
retry, rollback, fallback and respawn is counted in a
:class:`ReliabilityReport` the caller can read (and the chaos CI job
uploads as an artifact).  The report is plain counters — JSON-friendly,
mergeable, and cheap enough to thread through hot paths.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class ReliabilityReport:
    """Counters of recovery actions taken during one run."""

    #: retries performed, by injection-point label (``"sink.write"`` ...)
    retries: Counter = field(default_factory=Counter)
    #: sink rollbacks to the last durable marker before a rewrite
    sink_rollbacks: int = 0
    #: source re-opens at a chunk boundary after a read failure
    source_reopens: int = 0
    #: resumes that fell back to the previous (``.prev``) checkpoint
    #: because the newest one failed verification
    checkpoint_rollbacks: int = 0
    #: malformed input rows skipped or quarantined (CSV ``on_bad_rows``)
    bad_rows: int = 0
    quarantined_rows: int = 0
    #: sweep-pool recovery (see :class:`~repro.experiments.SweepEngine`)
    pool_respawns: int = 0
    pool_fallbacks: int = 0
    cell_retries: int = 0
    #: hung pool workers SIGKILLed by the watchdog (heartbeat silence)
    watchdog_kills: int = 0
    #: memory-budget adaptations: effective-chunk-size halvings (breach
    #: or ``MemoryError``) and regrows after sustained headroom
    chunk_shrinks: int = 0
    chunk_regrows: int = 0
    #: VECTOR -> ENGINE stream-backend degradations (bit-identical)
    backend_fallbacks: int = 0
    #: circuit-breaker open transitions, by label (``"pool.worker"``,
    #: ``"stream.vector"``)
    breaker_trips: Counter = field(default_factory=Counter)
    #: integrity layer (see :mod:`~repro.reliability.integrity`):
    #: output-prefix chunks re-hashed during a verified resume
    chunks_verified: int = 0
    #: journalled chunks discarded on resume because their on-disk bytes
    #: no longer matched the recorded digest (bit-rot rewinds)
    integrity_rewinds: int = 0
    #: source chunks skipped by verified-read because their row-content
    #: digest mismatched the manifest
    corrupt_chunks: int = 0
    #: stale run leases taken over (dead holder pid / expired heartbeat)
    lease_takeovers: int = 0

    def record_retry(self, label: str, attempt: int, exc: BaseException) -> None:
        """``on_retry`` hook for :func:`~repro.reliability.call_with_retry`."""
        self.retries[label] += 1

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def any_recovery(self) -> bool:
        """Did this run survive at least one fault?"""
        return bool(
            self.total_retries
            or self.sink_rollbacks
            or self.source_reopens
            or self.checkpoint_rollbacks
            or self.pool_respawns
            or self.pool_fallbacks
            or self.cell_retries
            or self.watchdog_kills
            or self.chunk_shrinks
            or self.chunk_regrows
            or self.backend_fallbacks
            or self.breaker_trips
            or self.integrity_rewinds
            or self.corrupt_chunks
            or self.lease_takeovers
        )

    def merge(self, other: "ReliabilityReport") -> None:
        self.retries.update(other.retries)
        self.sink_rollbacks += other.sink_rollbacks
        self.source_reopens += other.source_reopens
        self.checkpoint_rollbacks += other.checkpoint_rollbacks
        self.bad_rows += other.bad_rows
        self.quarantined_rows += other.quarantined_rows
        self.pool_respawns += other.pool_respawns
        self.pool_fallbacks += other.pool_fallbacks
        self.cell_retries += other.cell_retries
        self.watchdog_kills += other.watchdog_kills
        self.chunk_shrinks += other.chunk_shrinks
        self.chunk_regrows += other.chunk_regrows
        self.backend_fallbacks += other.backend_fallbacks
        self.breaker_trips.update(other.breaker_trips)
        self.chunks_verified += other.chunks_verified
        self.integrity_rewinds += other.integrity_rewinds
        self.corrupt_chunks += other.corrupt_chunks
        self.lease_takeovers += other.lease_takeovers

    def to_dict(self) -> dict:
        return {
            "retries": dict(self.retries),
            "total_retries": self.total_retries,
            "sink_rollbacks": self.sink_rollbacks,
            "source_reopens": self.source_reopens,
            "checkpoint_rollbacks": self.checkpoint_rollbacks,
            "bad_rows": self.bad_rows,
            "quarantined_rows": self.quarantined_rows,
            "pool_respawns": self.pool_respawns,
            "pool_fallbacks": self.pool_fallbacks,
            "cell_retries": self.cell_retries,
            "watchdog_kills": self.watchdog_kills,
            "chunk_shrinks": self.chunk_shrinks,
            "chunk_regrows": self.chunk_regrows,
            "backend_fallbacks": self.backend_fallbacks,
            "breaker_trips": dict(self.breaker_trips),
            "chunks_verified": self.chunks_verified,
            "integrity_rewinds": self.integrity_rewinds,
            "corrupt_chunks": self.corrupt_chunks,
            "lease_takeovers": self.lease_takeovers,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary(self) -> str:
        """One-line human summary (the CLI prints it after recovery)."""
        if not self.any_recovery and not self.bad_rows and not self.chunks_verified:
            return "reliability: clean run (no retries, no recovery)"
        parts = []
        if self.total_retries:
            labels = ", ".join(
                f"{label} x{count}" for label, count in sorted(self.retries.items())
            )
            parts.append(f"{self.total_retries} retries ({labels})")
        if self.sink_rollbacks:
            parts.append(f"{self.sink_rollbacks} sink rollbacks")
        if self.source_reopens:
            parts.append(f"{self.source_reopens} source reopens")
        if self.checkpoint_rollbacks:
            parts.append(f"{self.checkpoint_rollbacks} checkpoint rollbacks")
        if self.bad_rows:
            parts.append(
                f"{self.bad_rows} bad rows "
                f"({self.quarantined_rows} quarantined)"
            )
        if (
            self.pool_respawns or self.pool_fallbacks or self.cell_retries
            or self.watchdog_kills
        ):
            parts.append(
                f"pool: {self.cell_retries} task retries, "
                f"{self.pool_respawns} respawns, "
                f"{self.pool_fallbacks} fallbacks, "
                f"{self.watchdog_kills} watchdog kills"
            )
        if self.chunk_shrinks or self.chunk_regrows:
            parts.append(
                f"memory: {self.chunk_shrinks} chunk shrinks, "
                f"{self.chunk_regrows} regrows"
            )
        if self.backend_fallbacks or self.breaker_trips:
            labels = ", ".join(
                f"{label} x{count}"
                for label, count in sorted(self.breaker_trips.items())
            ) or "none"
            parts.append(
                f"degradation: {self.backend_fallbacks} backend fallbacks, "
                f"breaker trips: {labels}"
            )
        if (
            self.chunks_verified or self.integrity_rewinds
            or self.corrupt_chunks or self.lease_takeovers
        ):
            parts.append(
                f"integrity: {self.chunks_verified} chunks verified, "
                f"{self.integrity_rewinds} rewinds, "
                f"{self.corrupt_chunks} corrupt source chunks, "
                f"{self.lease_takeovers} lease takeovers"
            )
        return "reliability: " + "; ".join(parts)
