"""End-to-end integrity: chunk-hash manifests, audit, and run leases.

The crash-safety layer (checkpoints, retries) recovers from *loud*
failures — an exception, a SIGKILL.  This module covers the *quiet*
ones: a bit flips in an already-flushed chunk, a disk fills mid-member,
a second ``--resume`` process races the first.  Three mechanisms:

* **Chunk-hash manifest** — every sink ``write_chunk`` records a
  sha256 content digest plus its byte range (CSV/gzip) or rowid range
  (SQLite) in a :class:`ChunkManifest`.  The streaming pipeline appends
  each entry, together with the chunk's counter deltas and durable sink
  state, to an append-only *journal* file next to the checkpoint
  (``<checkpoint>.journal``, CRC-guarded JSONL).  :func:`audit_stream`
  re-hashes any marked output against its journal and localizes damage
  to the exact chunk.
* **Verified resume** — instead of trusting the surviving output
  prefix, resume re-hashes it against the journal and rewinds to the
  last *verified* chunk, so recovery stays byte-identical even under
  bit-rot (see ``stream_mark(verify_resume=True)``).
* **Run lease** — :class:`RunLock` is an ``O_EXCL`` lease file (pid +
  run fingerprint + heartbeat mtime) on the checkpoint/sink pair.  A
  concurrent embed/resume fails fast with :class:`RunLockedError`; a
  lease whose holder died or stopped heartbeating is taken over.

This module deliberately imports nothing from :mod:`repro.stream` (the
stream layer imports *us*), so its errors are plain ``Exception``
subclasses, not :class:`~repro.stream.errors.StreamError`.
"""

from __future__ import annotations

import binascii
import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path

from .faults import BITFLIP, fault_point, injection_armed, active_plan

#: journal line-format version (bumped on incompatible change; a
#: mismatched journal is treated as absent, never misread)
JOURNAL_VERSION = 1

#: only digest algorithm currently recorded; named in the journal header
#: so a future change stays self-describing
ALGORITHM = "sha256"

#: heartbeat silence (seconds) after which a lease from a *live* pid is
#: still considered abandoned and taken over
DEFAULT_STALE_AFTER = 300.0


class IntegrityError(Exception):
    """A persisted artifact no longer matches its recorded digests.

    ``chunk`` localizes the damage (``-1`` = the header segment,
    ``None`` = not chunk-addressable, e.g. a missing journal).
    """

    def __init__(self, path, reason: str, chunk: int | None = None):
        self.path = str(path)
        self.reason = reason
        self.chunk = chunk
        where = self.path if chunk is None else f"{self.path} chunk {chunk}"
        super().__init__(f"integrity violation at {where}: {reason}")


class RunLockedError(Exception):
    """Another process holds the run lease on this checkpoint/sink."""

    def __init__(self, path, holder_pid: int | None = None):
        self.path = str(path)
        self.holder_pid = holder_pid
        holder = f" (held by pid {holder_pid})" if holder_pid else ""
        super().__init__(
            f"run is locked by an active lease at {self.path}{holder}; "
            f"a concurrent embed/resume on the same output is refused"
        )


# ---------------------------------------------------------------------------
# digests and manifests
# ---------------------------------------------------------------------------


def digest_rows(rows) -> str:
    """Canonical row-content digest: sha256 over the rows as JSON.

    The JSON rendering of the typed values (int/float/str) round-trips
    exactly through every sink format — CSV text, gzip members, SQLite
    storage — so the same rows hash identically no matter which medium
    carried them.  This is the format-independent half of a chunk's
    identity (the byte digest is the format-dependent half).

    ``json.dumps`` serializes lists and tuples identically (a parsed CSV
    chunk yields lists, SQLite yields tuples), stays type-sensitive
    (``1`` vs ``"1"``), and renders the whole chunk in one C-level call —
    which is what keeps always-on manifest recording affordable on the
    streaming hot path.
    """
    if not isinstance(rows, list):
        rows = list(rows)
    payload = json.dumps(rows, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ChunkDigest:
    """One recorded segment: a half-open ``[start, end)`` range.

    For byte sinks (CSV, gzip) the range is byte offsets and ``digest``
    hashes the raw bytes; for SQLite it is row offsets and ``digest``
    equals ``rows_digest``.  ``rows_digest`` is the format-independent
    row-content digest (:func:`digest_rows`) verified-read checks.
    ``index == -1`` marks the header segment.
    """

    index: int
    start: int
    end: int
    digest: str
    rows_digest: str = ""

    def to_dict(self) -> dict:
        return {
            "chunk": self.index,
            "start": self.start,
            "end": self.end,
            "digest": self.digest,
            "rows_digest": self.rows_digest,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChunkDigest":
        return cls(
            index=int(payload["chunk"]),
            start=int(payload["start"]),
            end=int(payload["end"]),
            digest=str(payload["digest"]),
            rows_digest=str(payload.get("rows_digest", "")),
        )


@dataclass
class ChunkManifest:
    """The full digest record of one sink: header segment + chunks.

    ``kind`` is ``"bytes"`` (ranges are byte offsets into the output
    file) or ``"rows"`` (rowid offsets into a SQLite table).
    """

    kind: str
    algorithm: str = ALGORITHM
    header: ChunkDigest | None = None
    entries: list = field(default_factory=list)

    def truncate(self, chunks: int) -> None:
        """Forget entries past chunk ``chunks - 1`` (rollback support)."""
        del self.entries[chunks:]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "header": self.header.to_dict() if self.header else None,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChunkManifest":
        header = payload.get("header")
        return cls(
            kind=str(payload["kind"]),
            algorithm=str(payload.get("algorithm", ALGORITHM)),
            header=ChunkDigest.from_dict(header) if header else None,
            entries=[
                ChunkDigest.from_dict(entry)
                for entry in payload.get("entries", ())
            ],
        )


# ---------------------------------------------------------------------------
# the journal: append-only manifest + per-chunk deltas, CRC per line
# ---------------------------------------------------------------------------
#
# Line 1 is a header record binding the journal to one run fingerprint
# and sink kind; every further line is one committed chunk.  Each line
# carries a CRC-32 over its sorted-keys JSON body (the checkpoint
# module's convention), so a torn or bit-rotted tail is *detected and
# dropped*, preserving the valid prefix — the property resume needs.


def journal_path(checkpoint_path) -> Path:
    """The journal that rides along with ``checkpoint_path``."""
    return Path(str(checkpoint_path) + ".journal")


def _line_crc(body: dict) -> int:
    blob = json.dumps(body, sort_keys=True).encode("utf-8")
    return binascii.crc32(blob) & 0xFFFFFFFF


def _encode_line(body: dict) -> bytes:
    record = dict(body)
    record["crc"] = _line_crc(body)
    return json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"


def _decode_line(line: bytes) -> dict | None:
    """Parse one journal line; ``None`` for anything torn or rotted."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if crc != _line_crc(record):
        return None
    return record


def write_journal_header(
    path,
    *,
    fingerprint: str,
    kind: str,
    header_entry: ChunkDigest | None,
    open_state: dict | None,
) -> None:
    """Start (or restart) a journal: truncate and write the header line."""
    body = {
        "record": "header",
        "journal_version": JOURNAL_VERSION,
        "fingerprint": fingerprint,
        "kind": kind,
        "algorithm": ALGORITHM,
        "header_entry": header_entry.to_dict() if header_entry else None,
        "open_state": open_state,
    }
    with open(path, "wb") as handle:
        handle.write(_encode_line(body))
        handle.flush()
        os.fsync(handle.fileno())


def append_journal_chunk(
    path,
    *,
    index: int,
    entry: ChunkDigest,
    delta: dict,
    sink_state: dict | None,
) -> None:
    """Append one committed chunk's record (digest + deltas + state)."""
    body = {
        "record": "chunk",
        "chunk": index,
        "entry": entry.to_dict(),
        "delta": delta,
        "sink_state": sink_state,
    }
    line = _encode_line(body)
    kind = fault_point("journal.append", index)
    if kind == BITFLIP:
        # rot one byte of the line (never the trailing newline) — the
        # CRC must catch it and resume must drop this tail record
        rng = active_plan().rng("journal.append", index)
        pos = rng.randrange(len(line) - 1)
        line = line[:pos] + bytes([line[pos] ^ (1 << rng.randrange(8))]) + line[pos + 1:]
    with open(path, "ab") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def load_journal(path) -> tuple[dict | None, list]:
    """Read a journal tolerantly: ``(header, chunk_records)``.

    Any undecodable or out-of-sequence line ends the read — everything
    before it is the trusted prefix.  A missing file, or a header that
    fails validation, returns ``(None, [])``.
    """
    try:
        with open(path, "rb") as handle:
            lines = handle.readlines()
    except (FileNotFoundError, OSError):
        return None, []
    if not lines:
        return None, []
    header = _decode_line(lines[0])
    if (
        header is None
        or header.get("record") != "header"
        or header.get("journal_version") != JOURNAL_VERSION
    ):
        return None, []
    records = []
    for line in lines[1:]:
        record = _decode_line(line)
        if (
            record is None
            or record.get("record") != "chunk"
            or record.get("chunk") != len(records)
            or not isinstance(record.get("entry"), dict)
        ):
            break
        records.append(record)
    return header, records


def truncate_journal(path, chunks: int) -> None:
    """Rewrite the journal keeping the header plus ``chunks`` records."""
    header, records = load_journal(path)
    if header is None:
        return
    tmp = Path(str(path) + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_encode_line(header))
        for record in records[:chunks]:
            handle.write(_encode_line(record))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def manifest_from_journal(header: dict, records: list) -> ChunkManifest:
    """Rebuild the :class:`ChunkManifest` a journal prefix describes."""
    header_entry = header.get("header_entry")
    return ChunkManifest(
        kind=str(header.get("kind", "bytes")),
        algorithm=str(header.get("algorithm", ALGORITHM)),
        header=ChunkDigest.from_dict(header_entry) if header_entry else None,
        entries=[ChunkDigest.from_dict(r["entry"]) for r in records],
    )


# ---------------------------------------------------------------------------
# audit
# ---------------------------------------------------------------------------

OK = "ok"
CORRUPT = "corrupt"
MISSING = "missing"


@dataclass(frozen=True)
class AuditFinding:
    """One verified segment: header (``index == -1``) or a chunk."""

    index: int
    status: str
    start: int
    end: int
    expected: str
    actual: str = ""
    reason: str = ""


@dataclass
class AuditReport:
    """What :func:`audit_stream` found, chunk by chunk."""

    path: str
    kind: str
    findings: list = field(default_factory=list)
    #: bytes (``kind="bytes"``) or rows (``kind="rows"``) on disk past
    #: the last recorded range — trailing garbage appended post-run
    trailing: int = 0

    @property
    def header_ok(self) -> bool:
        return all(f.status == OK for f in self.findings if f.index == -1)

    @property
    def corrupt(self) -> list:
        """Indices of damaged chunks (header excluded), in order."""
        return [f.index for f in self.findings if f.index >= 0 and f.status != OK]

    @property
    def chunks(self) -> int:
        return sum(1 for f in self.findings if f.index >= 0)

    @property
    def verified_chunks(self) -> int:
        """Length of the leading run of intact chunks (resume target)."""
        count = 0
        for finding in self.findings:
            if finding.index < 0:
                continue
            if finding.status != OK:
                break
            count += 1
        return count

    @property
    def first_corrupt(self) -> int | None:
        damaged = self.corrupt
        return damaged[0] if damaged else None

    @property
    def ok(self) -> bool:
        return (
            self.header_ok
            and not self.corrupt
            and self.trailing == 0
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "ok": self.ok,
            "chunks": self.chunks,
            "verified_chunks": self.verified_chunks,
            "corrupt": self.corrupt,
            "header_ok": self.header_ok,
            "trailing": self.trailing,
            "findings": [
                {
                    "chunk": f.index,
                    "status": f.status,
                    "start": f.start,
                    "end": f.end,
                    "expected": f.expected,
                    "actual": f.actual,
                    "reason": f.reason,
                }
                for f in self.findings
            ],
        }

    def summary(self) -> str:
        unit = "bytes" if self.kind == "bytes" else "rows"
        if self.ok:
            return (
                f"audit: OK — {self.chunks} chunks verified in {self.path}"
            )
        parts = []
        if not self.header_ok:
            parts.append("header segment damaged")
        if self.corrupt:
            listed = ", ".join(str(i) for i in self.corrupt[:8])
            more = "..." if len(self.corrupt) > 8 else ""
            parts.append(
                f"{len(self.corrupt)} corrupt chunk(s): {listed}{more}"
            )
        if self.trailing:
            parts.append(f"{self.trailing} trailing {unit} past the manifest")
        return f"audit: FAILED — {'; '.join(parts)} in {self.path}"


def _audit_bytes(path, manifest: ChunkManifest) -> AuditReport:
    report = AuditReport(path=str(path), kind="bytes")
    targets = ([manifest.header] if manifest.header else []) + list(manifest.entries)
    try:
        size = os.path.getsize(path)
        handle = open(path, "rb")
    except OSError as exc:
        for entry in targets:
            report.findings.append(AuditFinding(
                entry.index, MISSING, entry.start, entry.end,
                entry.digest, reason=str(exc),
            ))
        return report
    with handle:
        for entry in targets:
            if size < entry.end:
                report.findings.append(AuditFinding(
                    entry.index, MISSING, entry.start, entry.end,
                    entry.digest,
                    reason=f"file ends at byte {size}, range needs {entry.end}",
                ))
                continue
            handle.seek(entry.start)
            hasher = hashlib.sha256()
            remaining = entry.end - entry.start
            while remaining:
                block = handle.read(min(remaining, 1 << 20))
                if not block:
                    break
                hasher.update(block)
                remaining -= len(block)
            actual = hasher.hexdigest()
            status = OK if actual == entry.digest else CORRUPT
            report.findings.append(AuditFinding(
                entry.index, status, entry.start, entry.end,
                entry.digest, actual,
                reason="" if status == OK else "byte digest mismatch",
            ))
    last_end = targets[-1].end if targets else 0
    report.trailing = max(0, size - last_end)
    return report


def _quote_identifier(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _audit_rows(path, manifest: ChunkManifest, table: str) -> AuditReport:
    report = AuditReport(path=str(path), kind="rows")
    quoted = _quote_identifier(table)
    try:
        conn = sqlite3.connect(path)
    except sqlite3.Error as exc:
        for entry in manifest.entries:
            report.findings.append(AuditFinding(
                entry.index, MISSING, entry.start, entry.end,
                entry.digest, reason=str(exc),
            ))
        return report
    try:
        for entry in manifest.entries:
            want = entry.end - entry.start
            try:
                rows = conn.execute(
                    f"SELECT * FROM {quoted} ORDER BY rowid LIMIT ? OFFSET ?",
                    (want, entry.start),
                ).fetchall()
            except sqlite3.Error as exc:
                report.findings.append(AuditFinding(
                    entry.index, CORRUPT, entry.start, entry.end,
                    entry.digest, reason=str(exc),
                ))
                continue
            if len(rows) != want:
                report.findings.append(AuditFinding(
                    entry.index, MISSING, entry.start, entry.end,
                    entry.digest,
                    reason=f"table holds {len(rows)} of {want} rows in range",
                ))
                continue
            actual = digest_rows(rows)
            status = OK if actual == entry.digest else CORRUPT
            report.findings.append(AuditFinding(
                entry.index, status, entry.start, entry.end,
                entry.digest, actual,
                reason="" if status == OK else "row digest mismatch",
            ))
        last_end = manifest.entries[-1].end if manifest.entries else 0
        try:
            total = conn.execute(
                f"SELECT COUNT(*) FROM {quoted}"
            ).fetchone()[0]
            report.trailing = max(0, total - last_end)
        except sqlite3.Error:
            pass
    finally:
        conn.close()
    return report


def audit_stream(
    path,
    *,
    journal=None,
    manifest: ChunkManifest | None = None,
    table: str = "relation",
) -> AuditReport:
    """Verify a marked output against its chunk-hash manifest.

    Pass either the ``journal`` path recorded at mark time (usually
    ``<checkpoint>.journal``) or an in-memory ``manifest``.  Returns an
    :class:`AuditReport` that localizes any damage to the exact chunk;
    raises :class:`IntegrityError` only when the manifest itself is
    unusable (missing/corrupt journal).
    """
    if manifest is None:
        if journal is None:
            raise IntegrityError(
                path, "audit needs a journal path or a manifest"
            )
        header, records = load_journal(journal)
        if header is None:
            raise IntegrityError(
                journal, "journal is missing or its header failed CRC"
            )
        manifest = manifest_from_journal(header, records)
    if manifest.kind == "rows":
        return _audit_rows(path, manifest, table)
    return _audit_bytes(path, manifest)


# ---------------------------------------------------------------------------
# run lease
# ---------------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover — other-user pid: alive
        return True
    except OSError:  # pragma: no cover
        return False
    return True


class RunLock:
    """An ``O_EXCL`` lease file guarding one checkpoint/sink pair.

    The lease payload names the holder (pid + run fingerprint); its
    mtime is the heartbeat, refreshed at every committed chunk.  A
    second process trying to acquire fails fast with
    :class:`RunLockedError` — unless the holder's pid is dead or the
    heartbeat is older than ``stale_after`` seconds, in which case the
    lease is taken over (crash-recovery without manual unlocking).
    """

    def __init__(
        self,
        path,
        *,
        fingerprint: str = "",
        stale_after: float = DEFAULT_STALE_AFTER,
    ):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.stale_after = stale_after
        self.held = False

    def _payload(self) -> bytes:
        return json.dumps({
            "pid": os.getpid(),
            "fingerprint": self.fingerprint,
            "acquired": time.time(),
        }, sort_keys=True).encode("utf-8")

    def _read_holder(self) -> dict:
        try:
            with open(self.path, "rb") as handle:
                holder = json.loads(handle.read().decode("utf-8"))
            return holder if isinstance(holder, dict) else {}
        except (OSError, ValueError, UnicodeDecodeError):
            # unreadable lease: treat as anonymous (stale-by-age only)
            return {}

    def _is_stale(self) -> bool:
        holder = self._read_holder()
        pid = int(holder.get("pid", 0) or 0)
        if pid and not _pid_alive(pid):
            return True
        try:
            age = time.time() - os.path.getmtime(self.path)
        except OSError:
            # vanished between checks — the creation race will settle it
            return True
        return age > self.stale_after

    def acquire(self) -> bool:
        """Take the lease; returns ``True`` when a stale one was evicted.

        Raises :class:`RunLockedError` if a live holder has it.  The
        takeover itself races safely: the loser of a concurrent eviction
        simply sees the winner's fresh ``O_EXCL`` file and is refused.
        """
        took_over = False
        for attempt in range(2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if attempt == 0 and self._is_stale():
                    try:
                        os.unlink(self.path)
                    except FileNotFoundError:
                        pass
                    took_over = True
                    continue
                holder = self._read_holder()
                raise RunLockedError(
                    self.path, int(holder.get("pid", 0) or 0) or None
                ) from None
            try:
                os.write(fd, self._payload())
                os.fsync(fd)
            finally:
                os.close(fd)
            self.held = True
            return took_over
        raise RunLockedError(self.path)  # pragma: no cover — loop bound

    def heartbeat(self) -> None:
        """Refresh the lease mtime (called at every committed chunk)."""
        if not self.held:
            return
        try:
            os.utime(self.path, None)
        except FileNotFoundError:  # pragma: no cover — evicted under us
            pass

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            os.unlink(self.path)
        except FileNotFoundError:  # pragma: no cover
            pass

    def __enter__(self) -> "RunLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
