"""Bounded, deterministic retry: the recovery half of the harness.

A :class:`RetryPolicy` describes *how often* and *how patiently* an I/O
boundary is retried; :func:`call_with_retry` applies it around one
idempotent operation (a sink write after rollback to the last durable
marker, a checkpoint save, a chunk re-read).  Two properties matter:

* **classification** — only *transient* faults are retried.  Real I/O
  errors (``OSError`` and friends, SQLite's operational errors, torn
  gzip streams) are transient; logic and data errors
  (:class:`~repro.core.errors.WatermarkingError`, schema violations,
  checkpoint corruption) are permanent — retrying them would loop on a
  bug.  :func:`classify` is the single shared taxonomy.
* **deterministic backoff** — delays grow exponentially and are
  jittered, but the jitter comes from
  ``random.Random(f"retry:{seed}:{label}:{attempt}")`` — the repo's
  literal-label rng contract — so a retry schedule is reproducible
  under a fixed policy seed (pinned by the reliability tests).
"""

from __future__ import annotations

import errno
import random
import sqlite3
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass

from ..core.errors import WatermarkingError
from ..relational.errors import RelationalError

TRANSIENT = "transient"
PERMANENT = "permanent"

#: fault classes a retry can plausibly outlast.  ``gzip.BadGzipFile`` is
#: an ``OSError`` subclass; ``zlib.error`` (truncated compressed data)
#: is not, hence listed.  ``EOFError`` covers truncated streams surfaced
#: by ``gzip``/``pickle`` readers.  ``MemoryError`` is transient by the
#: same logic a disk error is: pressure from elsewhere in the process
#: (caches, a sibling worker) can clear between attempts, and the
#: streaming pipeline additionally halves its working set before a
#: replay (see :class:`~repro.reliability.budget.MemoryBudget`).
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    OSError,
    EOFError,
    zlib.error,
    sqlite3.OperationalError,
    MemoryError,
)

#: fault classes no retry can fix — fail fast, preserve the traceback
PERMANENT_TYPES: tuple[type[BaseException], ...] = (
    WatermarkingError,
    RelationalError,
)


def classify(exc: BaseException) -> str:
    """The shared transient/permanent taxonomy.

    Unknown exception types default to *permanent*: silently retrying a
    bug is worse than failing loudly on a transient we misjudged.
    """
    if isinstance(exc, PERMANENT_TYPES):
        return PERMANENT
    if isinstance(exc, OSError) and exc.errno == errno.ENOSPC:
        # A full disk does not heal between backoff sleeps.  Fail fast at
        # the last durable boundary; the operator frees space and the run
        # continues with ``--resume``.
        return PERMANENT
    if isinstance(exc, TRANSIENT_TYPES):
        return TRANSIENT
    return PERMANENT


class RetryError(Exception):
    """A retried operation kept failing; ``__cause__`` holds the last
    underlying exception."""

    def __init__(self, label: str, attempts: int):
        self.label = label
        self.attempts = attempts
        super().__init__(
            f"{label!r} still failing after {attempts} attempt(s)"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with deterministic exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus at most two retries.  Delay before retry ``n`` (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)`` scaled by a
    seeded jitter in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int | str = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def delay(self, label: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of ``label``."""
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        rng = random.Random(f"retry:{self.seed}:{label}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: a policy that never retries — the "reliability layer off" sentinel
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_retry(
    fn: Callable[[], "object"],
    label: str,
    policy: RetryPolicy,
    *,
    recover: Callable[[], None] | None = None,
    on_retry: Callable[[str, int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run ``fn`` under ``policy``; returns its result.

    On a transient failure the sequence is *notify -> backoff ->
    recover -> retry*: ``on_retry(label, attempt, exc)`` feeds the
    reliability report, and ``recover`` restores the precondition that
    makes the retry idempotent (e.g. truncating a sink back to its last
    durable offset).  Permanent failures propagate untouched; transient
    exhaustion raises :class:`RetryError` from the last cause.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except Exception as exc:
            if classify(exc) is not TRANSIENT:
                raise
            if attempt >= policy.max_attempts:
                raise RetryError(label, attempt) from exc
            if on_retry is not None:
                on_retry(label, attempt, exc)
            sleep(policy.delay(label, attempt))
            if recover is not None:
                recover()
            attempt += 1
