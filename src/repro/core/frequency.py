"""Frequency-domain watermark encoding (§4.2).

Defence for the *extreme* vertical-partitioning attack: Mallory keeps a
single categorical column ``A``.  All tuple-level associations are gone, but
the main residual value of the column — its value-occurrence frequency
distribution ``[f_A(a_i)]`` — is still there, and that is exactly where this
channel hides the mark.

The histogram is treated as a numeric set and marked with the
minimal-absolute-change scheme of :mod:`repro.numericwm` (the paper's [10]).
As §4.2 observes, minimising absolute change in frequency space
*simultaneously* minimises the number of categorical items re-labelled —
the natural distortion measure of the categorical domain.  Count changes are
realised by re-labelling randomly chosen tuples between categories, and the
total count is reconciled so the relation size never changes.

Detection is blind and needs no tuple identity at all: it recomputes the
histogram of the suspect column and majority-votes quantisation-cell
parities, so it survives row loss (frequencies are scale-free), re-sorting,
and loss of every other attribute.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Hashable

from ..crypto import MarkKey, keyed_rng
from ..numericwm import detect_numeric_set, embed_numeric_set
from ..quality import QualityGuard, permissive_guard
from ..relational import CategoricalDomain, Table
from . import kernels
from .detection import false_hit_probability
from .errors import BandwidthError, DetectionError, SpecError
from .watermark import Watermark

_LABEL = "frequency-channel"


@dataclass(frozen=True)
class FrequencyMarkRecord:
    """Escrowed description of one frequency-domain embedding."""

    attribute: str
    watermark_length: int
    quantum: float
    domain_values: tuple[Hashable, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "attribute": self.attribute,
            "watermark_length": self.watermark_length,
            "quantum": self.quantum,
            "domain_values": list(self.domain_values),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FrequencyMarkRecord":
        return cls(
            attribute=payload["attribute"],
            watermark_length=payload["watermark_length"],
            quantum=payload["quantum"],
            domain_values=tuple(payload["domain_values"]),
        )


@dataclass
class FrequencyEmbeddingResult:
    """Outcome of a frequency-domain embedding pass.

    ``shortfall`` counts re-labellings that quality constraints vetoed;
    when non-zero, some histogram bins missed their target counts and the
    corresponding watermark bits may decode weakly (constraints take
    precedence over channel strength, per §4.1).
    """

    record: FrequencyMarkRecord
    relabelled: int
    target_counts: tuple[int, ...]
    original_counts: tuple[int, ...]
    shortfall: int = 0

    @property
    def relabelled_fraction(self) -> float:
        total = sum(self.original_counts)
        return self.relabelled / total if total else 0.0


@dataclass(frozen=True)
class FrequencyVerification:
    """Detection verdict for the frequency channel."""

    detected_watermark: Watermark
    expected: Watermark
    matching_bits: int
    false_hit_probability: float
    significance: float

    @property
    def detected(self) -> bool:
        return self.false_hit_probability <= self.significance

    @property
    def mark_alteration(self) -> float:
        return 1.0 - self.matching_bits / len(self.expected)


def default_quantum(domain_size: int) -> float:
    """A conservative frequency quantum: ~a quarter of a uniform bin.

    Small enough that re-labelling stays a small fraction of the data, large
    enough that sampling noise from substantial row loss stays inside the
    ``q/2`` decision margin.

    The reciprocal is deliberately a *half-integer* (``1/q = 4·nA + 0.5``):
    when ``1/q`` is an integer, the lattice of parity-constrained cell
    centres can make the total frequency mass 1.0 exactly unreachable
    (e.g. ``nA = 2, q = 1/8`` with two even-parity bins), whereas a
    half-integer reciprocal pins the reconciliation residue at ``±0.5·q·N``
    — always absorbable within cells.
    """
    if domain_size <= 0:
        raise SpecError(f"domain size must be positive, got {domain_size}")
    return 2.0 / (8.0 * domain_size + 1.0)


def _dodge_integer_reciprocal(quantum: float) -> float:
    """Nudge a user-supplied quantum whose reciprocal is (near-)integral.

    See :func:`default_quantum`: integral ``1/q`` admits payloads whose
    parity-constrained histograms cannot sum to 1.0; ``1/q`` half-integral
    guarantees feasibility.  The nudged value is stored in the mark record,
    so detection always uses exactly the embedding quantum.
    """
    reciprocal = 1.0 / quantum
    if abs(reciprocal - round(reciprocal)) < 1e-6:
        return 1.0 / (round(reciprocal) + 0.5)
    return quantum


def embed_frequency(
    table: Table,
    watermark: Watermark,
    key: MarkKey,
    attribute: str,
    quantum: float | None = None,
    guard: QualityGuard | None = None,
) -> FrequencyEmbeddingResult:
    """Embed ``watermark`` into the frequency histogram of ``attribute``.

    Mutates ``table`` in place by re-labelling the minimal number of tuples.
    Raises :class:`BandwidthError` when the domain has fewer values than is
    sane for the watermark (every bin carries at most one parity symbol).
    """
    meta = table.schema.attribute(attribute)
    if not meta.is_categorical or meta.domain is None:
        raise SpecError(f"attribute {attribute!r} is not categorical")
    domain = meta.domain
    if domain.size < 2:
        raise BandwidthError(
            f"domain of {attribute!r} has {domain.size} value(s); the "
            f"frequency channel needs at least 2"
        )
    if domain.size < len(watermark):
        raise BandwidthError(
            f"domain of {attribute!r} has {domain.size} value(s) but the "
            f"watermark has {len(watermark)} bits; each histogram bin "
            f"carries one parity symbol, so |wm| <= nA is required"
        )
    if len(table) == 0:
        raise BandwidthError("cannot embed into an empty relation")
    if quantum is None:
        quantum = default_quantum(domain.size)
    if not 0.0 < quantum < 1.0:
        raise SpecError(f"quantum must be in (0, 1), got {quantum}")
    quantum = _dodge_integer_reciprocal(quantum)

    total = len(table)
    counts = _counts_in_domain_order(table, attribute, domain)
    frequencies = [count / total for count in counts]

    numeric = embed_numeric_set(
        frequencies, watermark.bits, key.k2, quantum, label=_LABEL
    )
    targets = _reconcile_counts(numeric.values, total, quantum)

    if guard is None:
        guard = permissive_guard()
        guard.bind(table)
    relabelled, shortfall = _apply_count_deltas(
        table, attribute, domain, counts, targets, key, guard
    )
    record = FrequencyMarkRecord(
        attribute=attribute,
        watermark_length=len(watermark),
        quantum=quantum,
        domain_values=domain.values,
    )
    return FrequencyEmbeddingResult(
        record=record,
        relabelled=relabelled,
        target_counts=tuple(targets),
        original_counts=tuple(counts),
        shortfall=shortfall,
    )


def detect_frequency(
    table: Table,
    key: MarkKey,
    record: FrequencyMarkRecord,
    value_mapping: dict[Hashable, Hashable] | None = None,
) -> Watermark:
    """Blindly extract the frequency-channel watermark from ``table``.

    ``value_mapping`` translates suspect values back to original domain
    values — the inverse map produced by §4.5 remapping recovery.  Unknown
    values fall outside every bin and are ignored.
    """
    if record.attribute not in table.schema:
        raise DetectionError(
            f"attribute {record.attribute!r} missing from the suspect relation"
        )
    domain = CategoricalDomain(record.domain_values)
    # Histogram of the suspect column; values outside every bin — which a
    # remapping attack produces — simply never index a count.  When a
    # fresh factorization is already cached, aggregate per *unique* value
    # over it (one bincount + a loop over distinct values); otherwise one
    # C-speed Counter pass beats a cold Python-level factorization — and
    # cold is the common case here, since attacks rewrite exactly this
    # attribute.  Counts are integers, so the two are bit-identical.
    cached = kernels.cached_unique_counts(table, record.attribute)
    if cached is not None:
        uniques, unique_counts = cached
        index_of = domain.index_of
        counts = [0] * domain.size
        for value, count in zip(uniques, unique_counts):
            if value_mapping is not None:
                value = value_mapping.get(value, value)
            if value in domain:
                counts[index_of(value)] += count
    else:
        column: Any = table.column_view(record.attribute)
        if value_mapping is not None:
            column = (value_mapping.get(value, value) for value in column)
        observed = Counter(column)
        counts = [observed.get(value, 0) for value in domain.values]
    total = sum(counts)
    if total == 0:
        raise DetectionError(
            f"no recognisable {record.attribute!r} values in the suspect data"
        )
    frequencies = [count / total for count in counts]
    detection = detect_numeric_set(
        frequencies, record.watermark_length, key.k2, record.quantum,
        label=_LABEL,
    )
    return Watermark(detection.bits)


def verify_frequency(
    table: Table,
    key: MarkKey,
    record: FrequencyMarkRecord,
    expected: Watermark,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = 0.01,
) -> FrequencyVerification:
    """Detect and compare against the claimed watermark."""
    if len(expected) != record.watermark_length:
        raise DetectionError(
            f"expected watermark has {len(expected)} bits, record says "
            f"{record.watermark_length}"
        )
    detected = detect_frequency(table, key, record, value_mapping)
    matches = expected.matching_bits(detected)
    return FrequencyVerification(
        detected_watermark=detected,
        expected=expected,
        matching_bits=matches,
        false_hit_probability=false_hit_probability(matches, len(expected)),
        significance=significance,
    )


# -- internals -------------------------------------------------------------------

def _counts_in_domain_order(
    table: Table, attribute: str, domain: CategoricalDomain
) -> list[int]:
    """Columnar histogram build: one ``bincount`` over the column codes
    when a fresh factorization is already cached, one C-speed Counter
    pass otherwise (a cold factorization would cost more than it saves).

    Out-of-domain values still fail loudly (as the old per-cell
    ``index_of`` did) — an embedding target histogram must cover every
    tuple.
    """
    cached = kernels.cached_unique_counts(table, attribute)
    if cached is not None:
        index_of = domain.index_of
        counts = [0] * domain.size
        for value, count in zip(*cached):
            counts[index_of(value)] = count  # raises DomainError on strays
        return counts
    observed = Counter(table.column_view(attribute))
    counts = [observed.pop(value, 0) for value in domain.values]
    if observed:
        domain.index_of(next(iter(observed)))  # raises DomainError
    return counts


def _reconcile_counts(
    target_frequencies: tuple[float, ...], total: int, quantum: float
) -> list[int]:
    """Round frequency targets to integer counts summing exactly to ``total``.

    The per-bin parity moves of the numeric embedding do not conserve the
    total frequency mass, so the integer targets can miss ``total`` by many
    counts (the worst case grows with the quantum, not the bin count).
    Reconciliation proceeds in two parity-safe phases:

    1. **whole-cell jumps** — while the residue exceeds a single bin's
       within-cell slack, a bin is moved by a full ``±2·quantum`` (two
       cells), which lands in a cell of the *same parity* and so never
       disturbs a watermark bit;
    2. **within-cell distribution** — the remaining few counts are absorbed
       by the bins sitting deepest inside their cells.
    """
    centres = list(target_frequencies)
    targets = [round(f * total) for f in centres]
    residue = total - sum(targets)
    jump = round(2 * quantum * total)
    if jump < 1 and residue != 0:
        raise BandwidthError(
            "quantum * N is below one tuple; the frequency channel cannot "
            "quantise this relation — use a larger quantum or more data"
        )

    # Phase 1: parity-preserving two-cell jumps.
    iterations = 0
    while jump >= 1 and abs(residue) > jump // 2:
        iterations += 1
        if iterations > 4 * (total // max(jump, 1) + len(centres) + 4):
            raise BandwidthError(
                "could not reconcile histogram counts; use a larger quantum"
            )
        direction = 1 if residue > 0 else -1
        best_index = None
        for index, centre in enumerate(centres):
            new_centre = centre + direction * 2 * quantum
            new_target = targets[index] + direction * jump
            if not 0.0 < new_centre < 1.0:
                continue
            if not 0 <= new_target <= total:
                continue
            # prefer disturbing the largest bin (smallest relative change)
            if best_index is None or targets[index] > targets[best_index]:
                best_index = index
        if best_index is None:
            raise BandwidthError(
                "no histogram bin can absorb a parity-preserving jump; "
                "use a larger quantum"
            )
        centres[best_index] += direction * 2 * quantum
        targets[best_index] += direction * jump
        residue -= direction * jump

    # Phase 2: within-cell distribution of the remaining counts.
    step = 1 if residue > 0 else -1
    guard_limit = abs(residue) * (len(targets) + 1) + 1
    iterations = 0
    while residue != 0:
        iterations += 1
        if iterations > guard_limit:
            raise BandwidthError(
                "could not reconcile histogram counts within parity cells; "
                "use a larger quantum"
            )
        best_index = None
        best_slack = -1.0
        for index, count in enumerate(targets):
            adjusted = count + step
            if adjusted < 0:
                continue
            slack = quantum / 2.0 - abs(adjusted / total - centres[index])
            if slack > best_slack:
                best_slack = slack
                best_index = index
        if best_index is None or best_slack <= 0:
            raise BandwidthError(
                "no histogram bin has slack to absorb rounding residue; "
                "use a larger quantum"
            )
        targets[best_index] += step
        residue -= step
    return targets


def _apply_count_deltas(
    table: Table,
    attribute: str,
    domain: CategoricalDomain,
    counts: list[int],
    targets: list[int],
    key: MarkKey,
    guard: QualityGuard,
) -> tuple[int, int]:
    """Re-label tuples toward the ``targets`` histogram.

    Returns ``(relabelled, shortfall)``.  Quality-constraint vetoes never
    abort the pass: a vetoed donor is skipped (another tuple from a
    surplus bin is tried), and whatever cannot be realised at all is
    reported as shortfall — constraints outrank channel strength (§4.1).
    """
    deltas = [target - count for target, count in zip(targets, counts)]
    rng = keyed_rng(key.k1, _LABEL, len(table))

    donor_bins = {index for index, delta in enumerate(deltas) if delta < 0}
    pools: dict[int, list[Hashable]] = {index: [] for index in donor_bins}
    if donor_bins:
        # Columnar donor scan: only the (pk, value) cells are read, no
        # full-row tuples.
        index_of = domain.index_of
        for pk, value in table.iter_cells(table.primary_key, attribute):
            bin_index = index_of(value)
            if bin_index in donor_bins:
                pools[bin_index].append(pk)

    # Full donor queue (every tuple of every surplus bin) in keyed-random
    # order; per-bin surplus budgets stop a bin from over-draining.
    donor_queue: list[tuple[int, Hashable]] = [
        (bin_index, pk)
        for bin_index, pool in sorted(pools.items())
        for pk in pool
    ]
    rng.shuffle(donor_queue)
    remaining_surplus = {index: -deltas[index] for index in donor_bins}

    relabelled = 0
    shortfall = 0
    cursor = 0
    for bin_index, delta in enumerate(deltas):
        needed = delta
        target_value = domain.value_at(bin_index)
        while needed > 0 and cursor < len(donor_queue):
            donor_bin, pk = donor_queue[cursor]
            cursor += 1
            if remaining_surplus[donor_bin] <= 0:
                continue
            if guard.apply(pk, attribute, target_value):
                remaining_surplus[donor_bin] -= 1
                relabelled += 1
                needed -= 1
        shortfall += max(0, needed)
    return relabelled, shortfall
