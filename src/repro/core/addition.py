"""Watermark reinforcement by data addition (§4.6).

Data alteration destroys value; data *addition* often costs less.  Within an
allowed budget ``p_add`` (fraction of extra tuples), the owner injects
synthetic tuples that

* satisfy the secret fitness criterion (``H(K, k1) mod e == 0``) — found by
  generate-and-test, which the one-wayness of the hash does **not** prevent
  because fitness only tests a value ``mod e``: on average one candidate in
  ``e`` conforms;
* carry the correct watermark bit in the mark attribute (computed exactly
  like a regular embedding write); and
* follow the empirical distribution of the non-key attributes, preserving
  stealthiness.

The injected tuples add ``p_add * N`` carrier bits to the channel, directly
strengthening the majority vote (§4.4's resilience analysis applies with
the enlarged carrier count).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any, Hashable

from ..crypto import MarkKey, keyed_hash, keyed_rng
from ..relational import Table, empirical_distribution
from .embedding import (
    EmbeddingSpec,
    embedded_value_index_from_digest,
    slot_index,
)
from .errors import BandwidthError, SpecError
from .watermark import Watermark


@dataclass
class AdditionResult:
    """Outcome of a data-addition pass."""

    added: int
    candidates_tested: int
    added_keys: tuple[Hashable, ...]

    @property
    def acceptance_rate(self) -> float:
        if self.candidates_tested == 0:
            return 0.0
        return self.added / self.candidates_tested


def integer_key_generator(table: Table) -> Callable[[random.Random], Hashable]:
    """Fresh-key generator for integer primary keys.

    Draws keys uniformly from a window above the current maximum so the
    synthetic keys look like a continuation of the real key sequence rather
    than a recognisable block.
    """
    position = table.schema.position(table.primary_key)
    existing = [row[position] for row in table]
    if existing and not all(isinstance(value, int) for value in existing):
        raise SpecError(
            "integer_key_generator needs an integer primary key; supply a "
            "custom key_generator instead"
        )
    start = (max(existing) if existing else 0) + 1
    window = max(10 * len(existing), 1000)

    def generate(rng: random.Random) -> Hashable:
        return rng.randrange(start, start + window)

    return generate


def _column_samplers(
    table: Table, spec: EmbeddingSpec, rng: random.Random
) -> dict[str, Callable[[], Any]]:
    """Per-attribute samplers following the empirical data distribution."""
    samplers: dict[str, Callable[[], Any]] = {}
    for attribute in table.schema.names:
        if attribute in (table.primary_key, spec.mark_attribute):
            continue
        distribution = empirical_distribution(table.column(attribute))
        if not distribution:
            raise BandwidthError(
                f"cannot sample attribute {attribute!r} of an empty relation"
            )
        values = [value for value, _ in distribution]
        weights = [weight for _, weight in distribution]

        def sample(values=values, weights=weights) -> Any:
            return rng.choices(values, weights=weights, k=1)[0]

        samplers[attribute] = sample
    return samplers


def _candidate_keys(
    generate: Callable[[random.Random], Hashable],
    rng: random.Random,
    attempts: int,
) -> Iterator[Hashable]:
    for _ in range(attempts):
        yield generate(rng)


def add_watermarked_tuples(
    table: Table,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    p_add: float,
    key_generator: Callable[[random.Random], Hashable] | None = None,
    max_attempts_factor: int = 50,
) -> AdditionResult:
    """Inject ``round(p_add * N)`` fit, watermark-carrying tuples in place.

    Only the ``keyed`` variant is supported: the map variant's sequential
    indices are fixed at embedding time, whereas keyed slot selection lets
    any fresh fit tuple join the channel (the very property §3.2.1 credits
    for surviving data addition).
    """
    if not 0.0 <= p_add <= 1.0:
        raise SpecError(f"p_add must be in [0, 1], got {p_add}")
    if spec.variant != "keyed":
        raise SpecError("data addition requires the 'keyed' variant")
    if spec.key_attribute != table.primary_key:
        raise SpecError(
            "data addition synthesises whole tuples and therefore needs the "
            "embedding keyed on the relation's primary key"
        )
    domain = table.schema.attribute(spec.mark_attribute).domain
    if domain is None:
        raise SpecError(f"{spec.mark_attribute!r} is not categorical")

    goal = round(p_add * len(table))
    if goal == 0:
        return AdditionResult(added=0, candidates_tested=0, added_keys=())

    rng = keyed_rng(key.k1, "data-addition", len(table))
    generate = key_generator or integer_key_generator(table)
    samplers = _column_samplers(table, spec, rng)
    wm_data = spec.ecc().encode(watermark.bits, spec.channel_length)

    added_keys: list[Hashable] = []
    tested = 0
    attempts_budget = max_attempts_factor * spec.e * goal
    for candidate in _candidate_keys(generate, rng, attempts_budget):
        if len(added_keys) >= goal:
            break
        tested += 1
        if candidate in table:
            continue
        # Candidates are fresh random keys, so memoization cannot help —
        # but the k1 digest serves both the fitness test and the value
        # choice, so thread it through rather than hashing twice.
        digest = keyed_hash(candidate, key.k1)
        if digest % spec.e != 0:
            continue
        slot = slot_index(candidate, key.k2, spec.channel_length)
        bit = wm_data[slot]
        value_index = embedded_value_index_from_digest(digest, bit, domain)
        row = []
        for attribute in table.schema.names:
            if attribute == table.primary_key:
                row.append(candidate)
            elif attribute == spec.mark_attribute:
                row.append(domain.value_at(value_index))
            else:
                row.append(samplers[attribute]())
        table.insert(row)
        added_keys.append(candidate)

    if len(added_keys) < goal:
        raise BandwidthError(
            f"found only {len(added_keys)}/{goal} fit candidate keys after "
            f"{tested} attempts; widen the key window or raise "
            f"max_attempts_factor"
        )
    return AdditionResult(
        added=len(added_keys),
        candidates_tested=tested,
        added_keys=tuple(added_keys),
    )
