"""Watermark embedding (§3.2.1, Figure 1).

For every *fit* tuple (``H(T(K), k1) mod e == 0``) the encoder replaces the
categorical value ``T(A)`` with ``a_t``, where ``t`` is a keyed
pseudo-random value whose least-significant bit is forced to a watermark
data bit::

    t = set_bit( msb(H(T(K), k1), b(nA)), 0,
                 wm_data[ msb(H(T(K), k2), b(N/e)) ] )

Two variants are implemented, matching Figure 1(a)/(b):

* ``keyed`` — the ``wm_data`` bit index is derived from ``H(T(K), k2)``.
  Fully blind and stateless: any surviving tuple can be decoded in
  isolation, which is what survives subset selection/addition.
* ``map`` — bit indices are assigned sequentially and remembered in an
  ``embedding_map`` (``T(K) -> index``).  No ``k2`` needed and no index
  collisions, at the price of keeping the map as detection input.

Realisation note (also in DESIGN.md): the raw ``set_bit(msb(...), 0, bit)``
construction can yield ``t >= nA``.  We realise the same construction as
*pair coding* — pair index ``p = msb(H(T(K), k1), b(nA)) mod floor(nA/2)``,
then ``t = 2p + bit`` — which keeps ``t`` valid for every ``nA >= 2`` while
preserving both the keyed pseudo-randomness of the value choice and the
``bit = t & 1`` decoding rule.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..crypto import (
    SCALAR,
    CarrierPlan,
    HashEngine,
    MarkKey,
    bit_length,
    keyed_hash,
    msb,
    resolve_backend,
)
from ..ecc import ErrorCorrectingCode, get_code
from ..quality import GuardReport, QualityGuard, permissive_guard
from ..relational import CategoricalDomain, Table
from . import kernels
from .errors import BandwidthError, SpecError
from .fitness import expected_bandwidth
from .watermark import Watermark

VARIANT_KEYED = "keyed"
VARIANT_MAP = "map"
_VARIANTS = (VARIANT_KEYED, VARIANT_MAP)


@dataclass(frozen=True)
class EmbeddingSpec:
    """Everything blind detection needs besides the secret keys.

    The spec is part of the owner's escrowed mark record: attribute roles,
    the encoding parameter ``e``, the watermark length, the channel length
    ``|wm_data|`` fixed at embedding time, and the ECC in use.
    """

    key_attribute: str
    mark_attribute: str
    e: int
    watermark_length: int
    channel_length: int
    ecc_name: str = "majority"
    variant: str = VARIANT_KEYED

    def __post_init__(self) -> None:
        if self.e <= 0:
            raise SpecError(f"e must be positive, got {self.e}")
        if self.watermark_length <= 0:
            raise SpecError(
                f"watermark length must be positive, got {self.watermark_length}"
            )
        if self.channel_length < self.watermark_length:
            raise SpecError(
                f"channel length {self.channel_length} cannot be smaller than "
                f"the watermark length {self.watermark_length}"
            )
        if self.variant not in _VARIANTS:
            raise SpecError(
                f"variant must be one of {_VARIANTS}, got {self.variant!r}"
            )
        if self.key_attribute == self.mark_attribute:
            raise SpecError("key and mark attributes must differ")

    def ecc(self) -> ErrorCorrectingCode:
        return get_code(self.ecc_name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "key_attribute": self.key_attribute,
            "mark_attribute": self.mark_attribute,
            "e": self.e,
            "watermark_length": self.watermark_length,
            "channel_length": self.channel_length,
            "ecc_name": self.ecc_name,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "EmbeddingSpec":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise SpecError(f"malformed embedding spec: {exc}") from exc


@dataclass
class EmbeddingResult:
    """Report of one embedding pass."""

    spec: EmbeddingSpec
    fit_count: int
    applied: int
    vetoed: int
    unchanged: int
    slots_written: set[int] = field(default_factory=set)
    embedding_map: dict[Hashable, int] | None = None
    guard_report: GuardReport | None = None

    @property
    def slot_coverage(self) -> float:
        """Fraction of ``wm_data`` slots carried by at least one tuple."""
        if self.spec.channel_length == 0:
            return 0.0
        return len(self.slots_written) / self.spec.channel_length

    @property
    def alteration_fraction(self) -> float:
        """Fraction of fit tuples whose value actually changed."""
        if self.fit_count == 0:
            return 0.0
        return self.applied / self.fit_count


# -- keyed primitives shared with detection -------------------------------------

def slot_index(key_value: Hashable, k2: bytes, channel_length: int) -> int:
    """``msb(H(T(K), k2), b(|wm_data|))`` reduced into ``[0, |wm_data|)``."""
    if channel_length <= 0:
        raise SpecError(
            f"channel length must be positive, got {channel_length}"
        )
    return slot_index_from_digest(
        keyed_hash(key_value, k2), channel_length
    )


def slot_index_from_digest(digest: int, channel_length: int) -> int:
    """:func:`slot_index` with the ``H(T(K), k2)`` digest precomputed."""
    return msb(digest, bit_length(channel_length)) % channel_length


def value_pair_count(domain: CategoricalDomain) -> int:
    """Number of usable (even, odd) index pairs in the value domain."""
    return domain.size // 2


def embedded_value_index(
    key_value: Hashable, k1: bytes, bit: int, domain: CategoricalDomain
) -> int:
    """The value index ``t`` carrying ``bit`` for this tuple (pair coding)."""
    return embedded_value_index_from_digest(
        keyed_hash(key_value, k1), bit, domain
    )


def embedded_value_index_from_digest(
    digest: int, bit: int, domain: CategoricalDomain
) -> int:
    """:func:`embedded_value_index` with ``H(T(K), k1)`` precomputed.

    Fitness checking and value selection both consume the *same* ``k1``
    digest; threading it through halves the hash bill of the scalar
    embedding path.
    """
    pairs = value_pair_count(domain)
    if pairs == 0:
        raise BandwidthError(
            f"domain of size {domain.size} cannot carry a bit (need >= 2 values)"
        )
    secret = msb(digest, bit_length(domain.size))
    return 2 * (secret % pairs) + bit


def default_channel_length(tuple_count: int, e: int, watermark_length: int) -> int:
    """``|wm_data| = max(|wm|, N/e)`` — the paper's nominal bandwidth."""
    return max(watermark_length, expected_bandwidth(tuple_count, e))


def carrier_population(table: Table, key_attribute: str) -> int:
    """Number of candidate carriers for a given key attribute.

    For the declared primary key this is ``N``; for a §3.3 "primary key
    place-holder" it is the number of *distinct* values (each distinct fit
    value is one carrier, however many tuples share it), which is what the
    nominal bandwidth ``N/e`` must be computed from.
    """
    if key_attribute == table.primary_key:
        return len(table)
    position = table.schema.position(key_attribute)
    return len({row[position] for row in table})


# -- embedding ----------------------------------------------------------------

def make_spec(
    table: Table,
    watermark: Watermark,
    mark_attribute: str,
    e: int,
    key_attribute: str | None = None,
    channel_length: int | None = None,
    ecc_name: str = "majority",
    variant: str = VARIANT_KEYED,
) -> EmbeddingSpec:
    """Build an :class:`EmbeddingSpec` with the paper's defaults filled in."""
    resolved_key = key_attribute or table.primary_key
    if channel_length is None:
        channel_length = default_channel_length(
            carrier_population(table, resolved_key), e, len(watermark)
        )
    spec = EmbeddingSpec(
        key_attribute=resolved_key,
        mark_attribute=mark_attribute,
        e=e,
        watermark_length=len(watermark),
        channel_length=channel_length,
        ecc_name=ecc_name,
        variant=variant,
    )
    _validate_against_table(spec, table)
    return spec


def _validate_against_table(spec: EmbeddingSpec, table: Table) -> None:
    attribute = table.schema.attribute(spec.mark_attribute)
    if not attribute.is_categorical:
        raise SpecError(
            f"mark attribute {spec.mark_attribute!r} is not categorical"
        )
    assert attribute.domain is not None
    if value_pair_count(attribute.domain) == 0:
        raise BandwidthError(
            f"attribute {spec.mark_attribute!r} has a single-value domain; "
            f"no embedding bandwidth (§3.3 note)"
        )
    table.schema.position(spec.key_attribute)  # raises if unknown


def embed(
    table: Table,
    watermark: Watermark,
    key: MarkKey,
    spec: EmbeddingSpec,
    guard: QualityGuard | None = None,
    engine: HashEngine | str | None = None,
) -> EmbeddingResult:
    """Embed ``watermark`` into ``table`` **in place** under ``spec``.

    Returns a report with carrier statistics and, for the ``map`` variant,
    the embedding map needed at detection time.  Pass a bound
    :class:`QualityGuard` to enforce usability constraints with rollback;
    without one a permissive guard is used (all changes logged, none vetoed).

    ``engine`` selects the execution backend: ``None`` /
    :data:`~repro.crypto.AUTO` pick the NumPy vector kernels for large
    relations and the batched engine path otherwise (both on the shared
    :class:`HashEngine` for ``key``), an explicit engine instance forces
    the engine path with that instance, and the
    :data:`~repro.crypto.SCALAR` / :data:`~repro.crypto.ENGINE` /
    :data:`~repro.crypto.VECTOR` sentinels force a specific backend.  All
    backends are bit-identical.
    """
    _validate_against_table(spec, table)
    if len(watermark) != spec.watermark_length:
        raise SpecError(
            f"watermark has {len(watermark)} bits, spec says "
            f"{spec.watermark_length}"
        )
    domain = table.schema.attribute(spec.mark_attribute).domain
    assert domain is not None

    ecc = spec.ecc()
    wm_data = ecc.encode(watermark.bits, spec.channel_length)

    if guard is None:
        guard = permissive_guard()
        guard.bind(table)
    elif guard.context.table is not table:
        raise SpecError("guard is bound to a different table")

    result = EmbeddingResult(
        spec=spec,
        fit_count=0,
        applied=0,
        vetoed=0,
        unchanged=0,
        embedding_map={} if spec.variant == VARIANT_MAP else None,
        guard_report=guard.report,
    )

    if engine != SCALAR and kernels.use_vector(engine, table):
        return kernels.embed_vector(
            table,
            spec,
            domain,
            wm_data,
            guard,
            result,
            resolve_backend(engine, key),
        )

    if engine == SCALAR:
        carriers, carrier_pks, carrier_value, digests = _gather_scalar(
            table, key, spec
        )
        slot_of = None
        pair_of = None
    else:
        engine = resolve_backend(engine, key)
        plan = engine.plan(spec.e, spec.channel_length, domain.size)
        carriers, carrier_pks, carrier_value = _gather_batched(
            table, plan, spec
        )
        digests = None
        if spec.variant == VARIANT_KEYED:
            slot_of = plan.slots(carriers)
        else:
            slot_of = None
        pair_of = plan.pairs(carriers)

    sequential_index = 0
    for key_value in carriers:
        result.fit_count += 1
        if spec.variant == VARIANT_KEYED:
            if slot_of is not None:
                slot = slot_of[key_value]
            else:
                slot = slot_index(key_value, key.k2, spec.channel_length)
        else:
            slot = sequential_index % spec.channel_length
            assert result.embedding_map is not None
            result.embedding_map[key_value] = slot
            sequential_index += 1
        bit = wm_data[slot]
        if pair_of is not None:
            target_index = 2 * pair_of[key_value] + bit
        else:
            assert digests is not None
            target_index = embedded_value_index_from_digest(
                digests[key_value], bit, domain
            )
        new_value = domain.value_at(target_index)

        if carrier_value[key_value] == new_value:
            result.unchanged += 1
            result.slots_written.add(slot)
            continue
        applied_any = guard.apply_group(
            carrier_pks[key_value], spec.mark_attribute, new_value
        )
        if applied_any:
            result.applied += 1
            result.slots_written.add(slot)
        else:
            result.vetoed += 1
    return result


def _gather_scalar(
    table: Table, key: MarkKey, spec: EmbeddingSpec
) -> tuple[
    list[Hashable],
    dict[Hashable, list[Hashable]],
    dict[Hashable, Any],
    dict[Hashable, int],
]:
    """Reference carrier scan: row-at-a-time, one ``keyed_hash`` per
    distinct key value (the digest is kept and threaded to the value
    choice, so fitness and pair coding share a single hash).

    Maps each distinct key value to the primary keys of its carrier
    tuples.  For the declared primary key this is 1:1; for a non-key
    "primary key place-holder" (§3.3) every tuple sharing the value is
    rewritten so the (key value -> mark value) association is consistent
    at detection.  One pass; embedding then never rescans the table.
    """
    key_position = table.schema.position(spec.key_attribute)
    pk_position = table.schema.position(table.primary_key)
    mark_position = table.schema.position(spec.mark_attribute)
    carrier_pks: dict[Hashable, list[Hashable]] = {}
    carrier_value: dict[Hashable, Any] = {}
    digests: dict[Hashable, int] = {}
    carriers: list[Hashable] = []
    unfit: set[Hashable] = set()
    for row in table:
        key_value = row[key_position]
        if key_value in carrier_pks:
            carrier_pks[key_value].append(row[pk_position])
            continue
        if key_value in unfit:
            continue
        digest = keyed_hash(key_value, key.k1)
        if digest % spec.e == 0:
            carrier_pks[key_value] = [row[pk_position]]
            carrier_value[key_value] = row[mark_position]
            digests[key_value] = digest
            carriers.append(key_value)
        else:
            unfit.add(key_value)
    return carriers, carrier_pks, carrier_value, digests


def _gather_batched(
    table: Table, plan: "CarrierPlan", spec: EmbeddingSpec
) -> tuple[
    list[Hashable],
    dict[Hashable, "Sequence[Hashable]"],
    dict[Hashable, Any],
]:
    """Columnar carrier scan: batch-hash the distinct key values, then
    group carriers without materializing row tuples.

    Same carrier order (first physical encounter) and same outputs as
    :func:`_gather_scalar`.
    """
    key_column = table.column_view(spec.key_attribute)
    if spec.key_attribute == table.primary_key:
        # Primary keys are unique: no dedup pass, every row is its own
        # carrier group, and the few carrier mark values are fetched
        # point-wise instead of materializing the whole mark column.
        fit = plan.fitness(key_column)
        carriers = [value for value in key_column if fit[value]]
        carrier_pks = {value: (value,) for value in carriers}
        carrier_value = dict(
            zip(carriers, table.values_for(carriers, spec.mark_attribute))
        )
        return carriers, carrier_pks, carrier_value
    fit = plan.fitness(dict.fromkeys(key_column))
    mark_column = table.column_view(spec.mark_attribute)
    pk_column = table.column_view(table.primary_key)
    carrier_pks: dict[Hashable, list[Hashable]] = {}
    carrier_value: dict[Hashable, Any] = {}
    carriers: list[Hashable] = []
    for key_value, pk, mark in zip(key_column, pk_column, mark_column):
        if not fit[key_value]:
            continue
        group = carrier_pks.get(key_value)
        if group is not None:
            group.append(pk)
            continue
        carrier_pks[key_value] = [pk]
        carrier_value[key_value] = mark
        carriers.append(key_value)
    return carriers, carrier_pks, carrier_value
