"""Blind watermark detection (§3.2.2, Figure 2).

Detection re-runs the secret fitness criterion on the *suspect* relation,
reads one bit per fit tuple (``bit = t & 1`` where ``T(A) = a_t``), routes
it to its ``wm_data`` slot (via ``H(T(K), k2)`` or the embedding map), and
majority-decodes the slots back into the watermark.  No original data is
consulted — "mark detection is fully blind", the property the paper calls
out as essential for massive data sets.

Statistical verdicts follow §4.4: the probability that a *random* relation
of this size would match ``r`` of ``|wm|`` watermark bits is the binomial
tail ``P(Binom(|wm|, 1/2) >= r)``; a detection is declared when that
false-hit probability falls below the court-time threshold.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache
from math import comb
from typing import Hashable

from ..crypto import SCALAR, HashEngine, MarkKey, keyed_hash, resolve_backend
from ..ecc import DecodeResult
from ..relational import CategoricalDomain, Table
from . import kernels
from .embedding import EmbeddingSpec, VARIANT_KEYED, VARIANT_MAP, slot_index
from .errors import DetectionError
from .watermark import Watermark

#: default court-time threshold on the false-hit probability
DEFAULT_SIGNIFICANCE = 0.01


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of blind extraction from a suspect relation."""

    watermark: Watermark
    decode: DecodeResult
    fit_count: int
    slots_recovered: int
    channel_length: int

    @property
    def slot_coverage(self) -> float:
        """Fraction of ``wm_data`` slots recovered from surviving carriers."""
        if self.channel_length == 0:
            return 0.0
        return self.slots_recovered / self.channel_length

    @property
    def mean_confidence(self) -> float:
        """Mean per-bit majority agreement (1.0 = unanimous votes)."""
        if not self.decode.confidence:
            return 0.0
        return sum(self.decode.confidence) / len(self.decode.confidence)


@dataclass(frozen=True)
class VerificationResult:
    """Comparison of a detection against the owner's claimed watermark."""

    detection: DetectionResult
    expected: Watermark
    matching_bits: int
    false_hit_probability: float
    significance: float

    @property
    def detected(self) -> bool:
        """True when the match is too good to be chance at ``significance``."""
        return self.false_hit_probability <= self.significance

    @property
    def mark_alteration(self) -> float:
        """Fraction of watermark bits damaged — the Figures 4–7 y-axis."""
        return 1.0 - self.matching_bits / len(self.expected)

    def summary(self) -> str:
        return (
            f"matched {self.matching_bits}/{len(self.expected)} bits "
            f"(alteration {self.mark_alteration:.1%}), false-hit probability "
            f"{self.false_hit_probability:.3g} -> "
            f"{'DETECTED' if self.detected else 'not detected'}"
        )


@dataclass
class SlotVotes:
    """Raw per-slot vote tallies of one detection scan (or one chunk).

    The sufficient statistic behind slot resolution: per slot, the total
    vote count, the count of 1-votes, and the *first* vote in physical row
    order (``None`` when the slot was never addressed) — exactly what the
    majority-with-first-vote-tie-break rule consumes.  Tallies are
    associative, which is what makes detection streamable: chunk tallies
    merged in chunk order (:class:`VoteAccumulator`) resolve bit-identically
    to one scan of the concatenated rows.
    """

    total: list[int]
    ones: list[int]
    first: list[int | None]
    fit_count: int

    @classmethod
    def from_arrays(cls, zeros, ones, firsts, fit_count: int) -> "SlotVotes":
        """Adopt a vector-kernel tally (``firsts`` uses ``-1`` for None)."""
        zeros = zeros.tolist()
        ones = ones.tolist()
        return cls(
            total=[z + o for z, o in zip(zeros, ones)],
            ones=ones,
            first=[None if f < 0 else f for f in firsts.tolist()],
            fit_count=fit_count,
        )

    def resolve(self) -> tuple[list[int | None], int]:
        """``(slots, fit_count)`` under the majority / first-vote rule."""
        slots: list[int | None] = []
        for total, ones, first in zip(self.total, self.ones, self.first):
            if not total:
                slots.append(None)
                continue
            slots.append(1 if ones * 2 > total else
                         0 if ones * 2 < total else first)
        return slots, self.fit_count


class VoteAccumulator:
    """Order-preserving merge of per-chunk :class:`SlotVotes`.

    The streaming detection state: O(channel length) integers, independent
    of how many rows flow past.  Chunks must be added in physical row
    order — the first chunk to address a slot contributes the slot's first
    vote, which preserves the global first-vote tie rule of a one-shot
    scan over the concatenated relation.
    """

    def __init__(self, channel_length: int):
        if channel_length <= 0:
            raise DetectionError(
                f"channel length must be positive, got {channel_length}"
            )
        self.channel_length = channel_length
        self._total = [0] * channel_length
        self._ones = [0] * channel_length
        self._first: list[int | None] = [None] * channel_length
        self._fit_count = 0
        self.chunks_merged = 0

    def add(self, votes: SlotVotes) -> None:
        """Merge the next chunk's tallies (chunks arrive in row order)."""
        if len(votes.total) != self.channel_length:
            raise DetectionError(
                f"chunk tallies cover {len(votes.total)} slots, "
                f"accumulator expects {self.channel_length}"
            )
        total = self._total
        ones = self._ones
        first = self._first
        for slot, count in enumerate(votes.total):
            if not count:
                continue
            total[slot] += count
            ones[slot] += votes.ones[slot]
            if first[slot] is None:
                first[slot] = votes.first[slot]
        self._fit_count += votes.fit_count
        self.chunks_merged += 1

    @property
    def fit_count(self) -> int:
        return self._fit_count

    def votes(self) -> SlotVotes:
        """The merged tallies so far (a snapshot copy)."""
        return SlotVotes(
            total=list(self._total),
            ones=list(self._ones),
            first=list(self._first),
            fit_count=self._fit_count,
        )

    def resolve(self) -> tuple[list[int | None], int]:
        """``(slots, fit_count)`` over everything merged so far."""
        return self.votes().resolve()

    def detection(self, spec: EmbeddingSpec, ecc=None) -> DetectionResult:
        """Decode the accumulated votes into a :class:`DetectionResult`."""
        slots, fit_count = self.resolve()
        return _assemble_detection(spec, slots, fit_count, ecc=ecc)

    def verification(
        self,
        spec: EmbeddingSpec,
        expected: Watermark,
        significance: float = DEFAULT_SIGNIFICANCE,
    ) -> VerificationResult:
        """Compare the accumulated detection against the owner's claim."""
        if len(expected) != spec.watermark_length:
            raise DetectionError(
                f"expected watermark has {len(expected)} bits, spec says "
                f"{spec.watermark_length}"
            )
        return _assemble_verification(
            self.detection(spec), expected, significance
        )


def _resolve_domain(
    table: Table,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None,
    domain: CategoricalDomain | None,
) -> CategoricalDomain:
    """Shared input validation of every slot-recovery entry point."""
    if spec.variant == VARIANT_MAP and embedding_map is None:
        raise DetectionError(
            "the 'map' variant needs the embedding_map recorded at embedding"
        )
    resolved = domain or table.schema.attribute(spec.mark_attribute).domain
    if resolved is None:
        raise DetectionError(
            f"no categorical domain available for {spec.mark_attribute!r}"
        )
    return resolved


def extract_slots(
    table: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    engine: HashEngine | str | None = None,
) -> tuple[list[int | None], int]:
    """Recover the ``wm_data`` slots from the suspect relation.

    Returns ``(slots, fit_count)`` where ``slots[i]`` is the majority of the
    bits recovered for slot ``i`` (``None`` when no surviving tuple
    addressed it).  ``domain`` overrides the canonical value ordering when
    the suspect schema lost it (e.g. after CSV round-trips); values outside
    the domain — which a remapping attack produces — are skipped, not
    errors, so partial recovery still counts.  ``value_mapping`` translates
    suspect values back to original-domain values before decoding — the
    inverse map of §4.5 remapping recovery (entries mapping to the
    :data:`~repro.core.remapping.UNRECOVERED` sentinel fall outside the
    domain and are skipped).

    ``engine`` selects the execution backend exactly as in
    :func:`repro.core.embedding.embed` (SCALAR / ENGINE / VECTOR / AUTO or
    an explicit :class:`HashEngine`); with a shared engine a repeated
    detection of the same relation (attack sweeps, benchmarks) re-hashes
    nothing at all, and the vector backend additionally runs the per-row
    work as NumPy gathers over cached column codes.
    """
    resolved_domain = _resolve_domain(table, spec, embedding_map, domain)

    if engine != SCALAR and kernels.use_vector(engine, table):
        return kernels.extract_slots_vector(
            table,
            spec,
            resolved_domain,
            embedding_map,
            value_mapping,
            resolve_backend(engine, key),
        )
    return _scan_votes(
        table, key, spec, embedding_map, resolved_domain, value_mapping, engine
    ).resolve()


def extract_slot_votes(
    table: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    engine: HashEngine | str | None = None,
) -> SlotVotes:
    """:func:`extract_slots` stopped one step short of resolution.

    Returns the raw per-slot tallies (:class:`SlotVotes`) instead of the
    resolved slots — the accumulator-based entry point streamed detection
    is built on: a :class:`VoteAccumulator` merges per-chunk tallies and
    resolves once at the end, bit-identically to an in-memory
    :func:`extract_slots` over the concatenated rows.  Backend selection
    matches :func:`extract_slots` exactly.
    """
    resolved_domain = _resolve_domain(table, spec, embedding_map, domain)
    if engine != SCALAR and kernels.use_vector(engine, table):
        return SlotVotes.from_arrays(
            *kernels.extract_votes_vector(
                table,
                spec,
                resolved_domain,
                embedding_map,
                value_mapping,
                resolve_backend(engine, key),
            )
        )
    return _scan_votes(
        table, key, spec, embedding_map, resolved_domain, value_mapping, engine
    )


def _scan_votes(
    table: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None,
    resolved_domain: CategoricalDomain,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine | str | None,
) -> SlotVotes:
    """The SCALAR/ENGINE row scan, tallying votes without resolving them.

    Count-based voting: per-slot (total, ones, first-vote) tallies
    replace the list-of-vote-lists — same majority and same first-vote
    tie-break, without materializing a Python list per slot.  This loop
    runs once per attack-sweep cell, so its constant factor is the
    detection share of a sweep's wall time.
    """
    votes_total = [0] * spec.channel_length
    votes_ones = [0] * spec.channel_length
    votes_first: list[int | None] = [None] * spec.channel_length
    fit_count = 0
    if engine == SCALAR:
        fit, slot_of = _scan_scalar(table, key, spec)
    else:
        engine = resolve_backend(engine, key)
        plan = engine.plan(spec.e, spec.channel_length)
        key_column = table.column_view(spec.key_attribute)
        if spec.key_attribute == table.primary_key:
            distinct = key_column  # primary keys are unique already
        else:
            distinct = dict.fromkeys(key_column)
        fit = plan.fitness(distinct)
        if spec.variant == VARIANT_KEYED:
            slot_of = plan.slots(
                [value for value in distinct if fit[value]]
            )
        else:
            slot_of = None

    keyed_variant = spec.variant == VARIANT_KEYED
    in_domain = resolved_domain.__contains__
    index_of = resolved_domain.index_of
    for key_value, value in zip(
        table.column_view(spec.key_attribute),
        table.column_view(spec.mark_attribute),
    ):
        if not fit[key_value]:
            continue
        fit_count += 1
        if value_mapping is not None:
            value = value_mapping.get(value, value)
        if not in_domain(value):
            continue
        bit = index_of(value) & 1
        if keyed_variant:
            assert slot_of is not None
            slot = slot_of[key_value]
        else:
            assert embedding_map is not None
            if key_value not in embedding_map:
                continue
            slot = embedding_map[key_value]
            if not 0 <= slot < spec.channel_length:
                raise DetectionError(
                    f"embedding map entry {slot} outside channel "
                    f"[0, {spec.channel_length})"
                )
        votes_total[slot] += 1
        votes_ones[slot] += bit
        if votes_first[slot] is None:
            votes_first[slot] = bit

    return SlotVotes(votes_total, votes_ones, votes_first, fit_count)


def _scan_scalar(
    table: Table, key: MarkKey, spec: EmbeddingSpec
) -> tuple[dict[Hashable, bool], dict[Hashable, int] | None]:
    """Reference pre-scan: per-distinct-value fitness and slot caches.

    One ``k1`` hash per distinct key value, and (keyed variant) one ``k2``
    hash per distinct *fit* value — a §3.3 place-holder key's duplicate
    rows share the cached slot instead of re-hashing per row.
    """
    fit: dict[Hashable, bool] = {}
    slot_of: dict[Hashable, int] | None = (
        {} if spec.variant == VARIANT_KEYED else None
    )
    for key_value in table.iter_cells(spec.key_attribute):
        if key_value in fit:
            continue
        is_fit = keyed_hash(key_value, key.k1) % spec.e == 0
        fit[key_value] = is_fit
        if is_fit and slot_of is not None:
            slot_of[key_value] = slot_index(
                key_value, key.k2, spec.channel_length
            )
    return fit, slot_of


def _assemble_detection(
    spec: EmbeddingSpec, slots: list[int | None], fit_count: int, ecc=None
) -> DetectionResult:
    """Decode recovered slots into a :class:`DetectionResult`.

    The single assembly point behind :func:`detect` and the fused
    :func:`verify_multipass` — one place to grow, so the multi-pass path
    can never drift from the single-pass one.
    """
    decode = (ecc or spec.ecc()).decode(slots, spec.watermark_length)
    return DetectionResult(
        watermark=Watermark(decode.bits),
        decode=decode,
        fit_count=fit_count,
        slots_recovered=sum(slot is not None for slot in slots),
        channel_length=spec.channel_length,
    )


def _assemble_verification(
    detection: DetectionResult, expected: Watermark, significance: float
) -> VerificationResult:
    """Compare a detection against the claim (shared verdict assembly)."""
    matches = expected.matching_bits(detection.watermark)
    return VerificationResult(
        detection=detection,
        expected=expected,
        matching_bits=matches,
        false_hit_probability=false_hit_probability(matches, len(expected)),
        significance=significance,
    )


def detect(
    table: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    engine: HashEngine | str | None = None,
) -> DetectionResult:
    """Blindly extract the most likely watermark from ``table``."""
    slots, fit_count = extract_slots(
        table, key, spec, embedding_map, domain, value_mapping, engine
    )
    return _assemble_detection(spec, slots, fit_count)


@lru_cache(maxsize=4096)
def _fair_binomial_tail(matching_bits: int, watermark_length: int) -> float:
    """Exact ``P[Binom(n, 1/2) >= r]`` via integer combinatorics.

    ``sum(C(n, k) for k >= r) / 2**n`` computed in exact integer
    arithmetic and rounded once at the final division — replacing the
    ``scipy.stats.binom.sf`` call so that detection (and every sweep-pool
    worker importing it at startup) carries no scipy dependency.  Agrees
    with scipy to the last few ulps (cross-checked to 1e-12 by
    ``tests/core/test_detection.py``); memoized because verdicts query the
    same ``(r, |wm|)`` pairs thousands of times per sweep.
    """
    if matching_bits <= 0:
        return 1.0
    tail = sum(
        comb(watermark_length, hits)
        for hits in range(matching_bits, watermark_length + 1)
    )
    return tail / (1 << watermark_length)


def false_hit_probability(matching_bits: int, watermark_length: int) -> float:
    """``P[Binom(|wm|, 1/2) >= matching_bits]`` — §4.4's court-time test.

    With every bit matched this is the paper's ``(1/2)^|wm|``.
    """
    if not 0 <= matching_bits <= watermark_length:
        raise DetectionError(
            f"matching bits {matching_bits} outside [0, {watermark_length}]"
        )
    return _fair_binomial_tail(matching_bits, watermark_length)


def extract_slots_multipass(
    tables: Sequence[Table],
    keys: Sequence[MarkKey],
    spec: EmbeddingSpec,
    embedding_maps: Sequence[dict[Hashable, int] | None] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    engine: HashEngine | str | None = None,
) -> list[tuple[list[int | None], int]]:
    """:func:`extract_slots` for P keyed passes over one shared spec.

    Routes through the fused :func:`repro.core.kernels.detect_multipass`
    kernel — one carrier gather + one ``bincount`` for all passes — when
    the backend is vector-eligible and every suspect relation shares one
    key-column factorization object (the §5 sweep-cell regime: attacked
    clones of one base).  Otherwise it degrades to per-pass
    :func:`extract_slots` calls; both routes are bit-identical.
    """
    tables = list(tables)
    keys = list(keys)
    if len(tables) != len(keys):
        raise DetectionError(
            f"{len(tables)} suspect relations but {len(keys)} keys"
        )
    maps: Sequence[dict[Hashable, int] | None]
    maps = list(embedding_maps) if embedding_maps is not None else [None] * len(tables)
    if len(maps) != len(tables):
        raise DetectionError(
            f"{len(tables)} suspect relations but {len(maps)} embedding maps"
        )
    if spec.variant == VARIANT_MAP and any(m is None for m in maps):
        raise DetectionError(
            "the 'map' variant needs the embedding_map recorded at embedding"
        )
    if (
        len(tables) > 1
        and engine != SCALAR
        and all(kernels.use_vector(engine, table) for table in tables)
        and kernels.shared_key_codes(tables, spec.key_attribute) is not None
    ):
        domains = []
        for table in tables:
            resolved = (
                domain or table.schema.attribute(spec.mark_attribute).domain
            )
            if resolved is None:
                raise DetectionError(
                    f"no categorical domain available for "
                    f"{spec.mark_attribute!r}"
                )
            domains.append(resolved)
        engines = [resolve_backend(engine, key) for key in keys]
        return kernels.detect_multipass(
            tables,
            spec,
            domains,
            maps if spec.variant == VARIANT_MAP else None,
            value_mapping,
            engines,
        )
    return [
        extract_slots(
            table, key, spec, embedding_map, domain, value_mapping, engine
        )
        for table, key, embedding_map in zip(tables, keys, maps)
    ]


def verify_multipass(
    tables: Sequence[Table],
    keys: Sequence[MarkKey],
    spec: EmbeddingSpec,
    expecteds: Sequence[Watermark],
    embedding_maps: Sequence[dict[Hashable, int] | None] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = DEFAULT_SIGNIFICANCE,
    engine: HashEngine | str | None = None,
) -> list[VerificationResult]:
    """Verify P keyed passes of one spec in a single fused detection.

    The multi-pass entry point behind the §5 evaluation protocol (and the
    sweep engine's warm cells): pass ``p`` is verified on ``tables[p]``
    under ``keys[p]`` against ``expecteds[p]``.  Results — detection,
    matching bits, false-hit probability, verdict — are bit-identical to
    a loop of :func:`verify` calls; only the execution fuses.
    """
    expecteds = list(expecteds)
    if len(expecteds) != len(tables):
        raise DetectionError(
            f"{len(tables)} suspect relations but {len(expecteds)} "
            f"expected watermarks"
        )
    for expected in expecteds:
        if len(expected) != spec.watermark_length:
            raise DetectionError(
                f"expected watermark has {len(expected)} bits, spec says "
                f"{spec.watermark_length}"
            )
    recovered = extract_slots_multipass(
        tables, keys, spec, embedding_maps, domain, value_mapping, engine
    )
    ecc = spec.ecc()
    return [
        _assemble_verification(
            _assemble_detection(spec, slots, fit_count, ecc=ecc),
            expected,
            significance,
        )
        for expected, (slots, fit_count) in zip(expecteds, recovered)
    ]


def verify(
    table: Table,
    key: MarkKey,
    spec: EmbeddingSpec,
    expected: Watermark,
    embedding_map: dict[Hashable, int] | None = None,
    domain: CategoricalDomain | None = None,
    value_mapping: dict[Hashable, Hashable] | None = None,
    significance: float = DEFAULT_SIGNIFICANCE,
    engine: HashEngine | str | None = None,
) -> VerificationResult:
    """Detect and compare against the owner's claimed watermark."""
    if len(expected) != spec.watermark_length:
        raise DetectionError(
            f"expected watermark has {len(expected)} bits, spec says "
            f"{spec.watermark_length}"
        )
    detection = detect(
        table, key, spec, embedding_map, domain, value_mapping, engine
    )
    return _assemble_verification(detection, expected, significance)
