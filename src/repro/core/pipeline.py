"""High-level facade: the owner's mark/verify workflow.

:class:`Watermarker` ties the pieces into the workflow a rights holder
actually runs:

1. ``embed`` — clone the relation, watermark it (optionally under quality
   constraints, optionally reinforced by data addition and a
   frequency-domain mark), and return the marked relation plus a
   :class:`MarkRecord`;
2. escrow the :class:`MarkRecord` (JSON) and the secret :class:`MarkKey`;
3. much later, ``verify`` a suspect relation blindly from just those two.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..crypto import AUTO, BACKENDS, HashEngine, MarkKey, resolve_engine
from ..quality import Constraint, QualityGuard
from ..relational import Table
from . import kernels
from .addition import AdditionResult, add_watermarked_tuples
from .detection import VerificationResult, verify
from .embedding import EmbeddingResult, EmbeddingSpec, embed, make_spec
from .errors import DetectionError, SpecError
from .frequency import (
    FrequencyMarkRecord,
    FrequencyVerification,
    embed_frequency,
    verify_frequency,
)
from .remapping import FrequencyProfile, recover_mapping
from .watermark import Watermark


@dataclass
class MarkRecord:
    """Everything the owner escrows besides the secret key.

    Contains **no secret material**: keys stay in :class:`MarkKey`.  It does
    contain the claimed watermark — the record *is* the ownership claim that
    will be compared against the blind detection result in court.
    """

    watermark: Watermark
    spec: EmbeddingSpec
    embedding_map: dict[Hashable, int] | None = None
    frequency_record: FrequencyMarkRecord | None = None
    frequency_profile: FrequencyProfile | None = None
    domain_values: tuple[Hashable, ...] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "watermark": self.watermark.to_bitstring(),
            "spec": self.spec.to_dict(),
            "metadata": self.metadata,
        }
        if self.domain_values is not None:
            payload["domain_values"] = list(self.domain_values)
        if self.embedding_map is not None:
            payload["embedding_map"] = [
                [key, slot] for key, slot in self.embedding_map.items()
            ]
        if self.frequency_record is not None:
            payload["frequency_record"] = self.frequency_record.to_dict()
        if self.frequency_profile is not None:
            payload["frequency_profile"] = self.frequency_profile.to_dict()
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MarkRecord":
        payload = json.loads(text)
        try:
            record = cls(
                watermark=Watermark(int(b) for b in payload["watermark"]),
                spec=EmbeddingSpec.from_dict(payload["spec"]),
                metadata=payload.get("metadata", {}),
            )
        except (KeyError, ValueError) as exc:
            raise SpecError(f"malformed mark record: {exc}") from exc
        if "domain_values" in payload:
            record.domain_values = tuple(payload["domain_values"])
        if "embedding_map" in payload:
            record.embedding_map = {
                _freeze_key(key): slot for key, slot in payload["embedding_map"]
            }
        if "frequency_record" in payload:
            record.frequency_record = FrequencyMarkRecord.from_dict(
                payload["frequency_record"]
            )
        if "frequency_profile" in payload:
            record.frequency_profile = FrequencyProfile.from_dict(
                payload["frequency_profile"]
            )
        return record


def _freeze_key(key: Any) -> Hashable:
    return tuple(key) if isinstance(key, list) else key


@dataclass
class EmbedOutcome:
    """Marked relation plus all per-channel reports."""

    table: Table
    record: MarkRecord
    embedding: EmbeddingResult
    addition: AdditionResult | None = None
    frequency: Any = None  # FrequencyEmbeddingResult when enabled


@dataclass
class VerifyOutcome:
    """Combined verdict over the association and frequency channels."""

    association: VerificationResult | None
    frequency: FrequencyVerification | None

    @property
    def detected(self) -> bool:
        channels = [c for c in (self.association, self.frequency) if c is not None]
        return any(channel.detected for channel in channels)

    def summary(self) -> str:
        lines = []
        if self.association is not None:
            lines.append(f"association channel: {self.association.summary()}")
        if self.frequency is not None:
            freq = self.frequency
            lines.append(
                f"frequency channel  : matched "
                f"{freq.matching_bits}/{len(freq.expected)} bits, "
                f"false-hit probability {freq.false_hit_probability:.3g} -> "
                f"{'DETECTED' if freq.detected else 'not detected'}"
            )
        lines.append(
            f"overall            : "
            f"{'DETECTED' if self.detected else 'not detected'}"
        )
        return "\n".join(lines)


class Watermarker:
    """The owner's end-to-end categorical watermarking workflow."""

    def __init__(
        self,
        key: MarkKey,
        e: int = 60,
        ecc_name: str = "majority",
        variant: str = "keyed",
        significance: float = 0.01,
        engine: HashEngine | str | None = None,
    ):
        """``engine`` selects the execution backend for every embed/verify
        this instance runs.  ``None`` / :data:`~repro.crypto.AUTO`
        (default) pick per relation — vector kernels for large tables,
        the batched engine path otherwise — always on the process-wide
        shared :class:`HashEngine` for ``key``, so embedding warms the
        caches detection then reads for free.  The
        :data:`~repro.crypto.SCALAR` / :data:`~repro.crypto.ENGINE` /
        :data:`~repro.crypto.VECTOR` sentinels force one backend; an
        explicit :class:`HashEngine` instance forces the engine path on
        that instance."""
        if e <= 0:
            raise SpecError(f"e must be positive, got {e}")
        self.key = key
        self.e = e
        self.ecc_name = ecc_name
        self.variant = variant
        self.significance = significance
        if engine is None:
            self.engine: HashEngine | str = AUTO
        elif isinstance(engine, str):
            if engine not in BACKENDS:
                raise SpecError(
                    f"backend must be one of {BACKENDS}, got {engine!r}"
                )
            self.engine = engine
        else:
            self.engine = resolve_engine(engine, key)

    # -- embedding ---------------------------------------------------------
    def embed(
        self,
        table: Table,
        watermark: Watermark,
        mark_attribute: str,
        key_attribute: str | None = None,
        constraints: list[Constraint] | None = None,
        channel_length: int | None = None,
        p_add: float = 0.0,
        with_frequency_channel: bool = False,
        frequency_quantum: float | None = None,
    ) -> EmbedOutcome:
        """Watermark a copy of ``table``; the input is never mutated."""
        if kernels.use_vector(self.engine, table):
            # Factorize on the *base* relation first: the clone below
            # inherits the column codes copy-on-write, so repeated embeds
            # of one base (sweeps, benches) never re-factorize, and the
            # engine's plan arrays — keyed by these shared codes objects —
            # stay warm across passes.
            kernels.warm_codes(
                table, key_attribute or table.primary_key, mark_attribute
            )
        marked = table.clone(name=f"{table.name}_marked")
        spec = make_spec(
            marked,
            watermark,
            mark_attribute=mark_attribute,
            e=self.e,
            key_attribute=key_attribute,
            channel_length=channel_length,
            ecc_name=self.ecc_name,
            variant=self.variant,
        )
        guard = QualityGuard(list(constraints or []))
        guard.bind(marked)
        embedding = embed(
            marked, watermark, self.key, spec, guard=guard, engine=self.engine
        )

        addition = None
        if p_add > 0.0:
            addition = add_watermarked_tuples(
                marked, watermark, self.key, spec, p_add
            )

        frequency_result = None
        frequency_record = None
        if with_frequency_channel:
            frequency_guard = QualityGuard(list(constraints or []))
            frequency_guard.bind(marked)
            frequency_result = embed_frequency(
                marked,
                watermark,
                self.key,
                mark_attribute,
                quantum=frequency_quantum,
                guard=frequency_guard,
            )
            frequency_record = frequency_result.record

        domain = marked.schema.attribute(mark_attribute).domain
        record = MarkRecord(
            watermark=watermark,
            spec=spec,
            embedding_map=embedding.embedding_map,
            frequency_record=frequency_record,
            frequency_profile=FrequencyProfile.capture(marked, mark_attribute),
            domain_values=domain.values if domain is not None else None,
            metadata={"source": table.name, "tuples": len(marked)},
        )
        return EmbedOutcome(
            table=marked,
            record=record,
            embedding=embedding,
            addition=addition,
            frequency=frequency_result,
        )

    # -- verification -------------------------------------------------------
    def verify(
        self,
        suspect: Table,
        record: MarkRecord,
        try_remap_recovery: bool = False,
    ) -> VerifyOutcome:
        """Blindly verify ownership of ``suspect`` against ``record``.

        With ``try_remap_recovery`` the frequency profile escrowed in the
        record is used to invert a suspected bijective re-mapping (§4.5)
        before decoding both channels.
        """
        # Two recovery flavours (§4.5): the association channel wants the
        # *strict* map (ambiguous tail values become erasures, not noise
        # votes); the frequency channel wants the *lenient* best-guess map
        # (confusing two equal-count values leaves the histogram intact).
        strict_mapping: dict[Hashable, Hashable] | None = None
        lenient_mapping: dict[Hashable, Hashable] | None = None
        if try_remap_recovery:
            if record.frequency_profile is None:
                raise DetectionError(
                    "remap recovery needs the frequency profile escrowed in "
                    "the mark record"
                )
            strict_mapping = recover_mapping(
                suspect, record.frequency_profile, drop_ambiguous=True
            )
            lenient_mapping = recover_mapping(suspect, record.frequency_profile)

        association = None
        if (
            record.spec.key_attribute in suspect.schema
            and record.spec.mark_attribute in suspect.schema
        ):
            working = suspect
            # Decode against the escrowed original domain: the suspect copy
            # may carry an inferred sub-domain (CSV round-trips, data loss)
            # whose canonical value ordering — and hence index parities —
            # differs from the one used at embedding time.
            domain = None
            if record.domain_values is not None:
                from ..relational import CategoricalDomain

                domain = CategoricalDomain(record.domain_values)
            association = verify(
                working,
                self.key,
                record.spec,
                record.watermark,
                embedding_map=record.embedding_map,
                domain=domain,
                value_mapping=strict_mapping,
                significance=self.significance,
                engine=self.engine,
            )

        frequency = None
        if (
            record.frequency_record is not None
            and record.frequency_record.attribute in suspect.schema
        ):
            try:
                frequency = verify_frequency(
                    suspect,
                    self.key,
                    record.frequency_record,
                    record.watermark,
                    value_mapping=lenient_mapping,
                    significance=self.significance,
                )
            except DetectionError:
                # No recognisable values (e.g. an un-recovered re-mapping):
                # the channel is unavailable, not an error — the association
                # channel may still answer.
                frequency = None

        if association is None and frequency is None:
            raise DetectionError(
                "no marked attribute survives in the suspect relation"
            )
        return VerifyOutcome(association=association, frequency=frequency)
