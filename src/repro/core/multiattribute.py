"""Multiple attribute embeddings (§3.3).

A single ``mark(K, A)`` embedding dies with its key attribute under vertical
partitioning (A5).  The extension marks *every* usable attribute pair —
``mark(K, A), mark(K, B), mark(A, B), ...`` — treating the first attribute
of each pair as a primary-key place-holder, so that any surviving pair of
attributes still carries a rights witness.

Three §3.3 mechanics are implemented:

* **Interference avoidance** — a ledger of cells modified by earlier passes
  is enforced as a guard constraint, so a later pass never overwrites (or
  is misled by re-reading) an earlier pass's alterations;
* **Direction flipping** — when the natural target of a pair was already
  modified, the pair is deployed in the opposite direction
  (``mark(B, A)`` instead of ``mark(A, B)``), spreading the mark;
* **Pair closure** — a closure over the schema's attribute-pair graph
  (networkx) that maximises the number of watermarked pairs while greedily
  minimising interference, preferring non-categorical attributes as key
  place-holders (the paper's open question about categorical
  place-holders).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from ..crypto import HashEngine, MarkKey
from ..quality import Constraint, ChangeContext, QualityGuard
from ..relational import Table
from .detection import VerificationResult, verify_multipass
from .embedding import (
    EmbeddingResult,
    EmbeddingSpec,
    carrier_population,
    embed,
    make_spec,
    value_pair_count,
)
from .errors import SpecError
from .watermark import Watermark


@dataclass(frozen=True)
class PairDirective:
    """One ``mark(key_attribute, mark_attribute)`` deployment order."""

    key_attribute: str
    mark_attribute: str

    @property
    def label(self) -> str:
        return f"{self.key_attribute}->{self.mark_attribute}"


class LedgerConstraint(Constraint):
    """Veto alterations to cells already modified by an earlier pass.

    This is §3.3's "maintaining a hash-map at watermarking time,
    'remembering' modified tuples in each marking pass" — realised on top
    of the rollback log's changed-cell set.
    """

    def __init__(self, frozen_cells: set[tuple[Hashable, str]]):
        self.frozen_cells = frozen_cells
        self.name = "interference-ledger"

    def violated(self, context: ChangeContext) -> str | None:
        proposal = context.proposal
        if proposal is None:
            return None
        if (proposal.key, proposal.attribute) in self.frozen_cells:
            return (
                f"cell ({proposal.key!r}, {proposal.attribute!r}) was "
                f"modified by an earlier marking pass"
            )
        return None


def _markable(table: Table, attribute: str) -> bool:
    """Can ``attribute`` carry a bit (categorical with >= 2 values)?"""
    meta = table.schema.attribute(attribute)
    return meta.is_categorical and meta.domain is not None and \
        value_pair_count(meta.domain) >= 1


def build_pair_closure(
    table: Table,
    attributes: list[str] | None = None,
    watermark_length: int = 10,
    min_carriers_per_bit: int = 2,
    max_carrier_share: float = 1.0,
) -> list[PairDirective]:
    """Orient the attribute-pair graph into a marking plan.

    Nodes are the primary key plus every candidate attribute; each edge
    ``{X, Y}`` is oriented so that the *marked* endpoint is (a) markable and
    (b) the endpoint marked fewest times so far — the greedy
    interference-minimising closure the paper sketches.  The primary key is
    never marked (it is the anchor every other association hangs off).

    Key place-holders with too few distinct values are rejected: a pair
    keyed on an attribute with fewer than
    ``min_carriers_per_bit * watermark_length`` distinct values cannot give
    every watermark bit a carrier, the degenerate case §3.3's closing note
    warns about ("A can have just one possible value which would upset the
    'fit' tuple selection algorithm").

    ``max_carrier_share`` bounds the *data-alteration cost* of a pair: a
    pair keyed on attribute ``X`` marks roughly ``1/e_pair`` of ``X``'s
    distinct values, and every tuple holding a marked value is rewritten —
    for low-cardinality place-holders that can be most of the relation.
    Pairs whose carrier share ``1/e_pair`` would exceed the bound are
    excluded from the closure (default 1.0 = no bound; 0.25 is a sensible
    production choice).
    """
    names = list(attributes) if attributes is not None else [
        name for name in table.schema.names
    ]
    for name in names:
        table.schema.position(name)  # validate early
    pk = table.primary_key
    if pk not in names:
        names.insert(0, pk)
    minimum_distinct = min_carriers_per_bit * watermark_length
    distinct = {
        name: carrier_population(table, name) for name in names
    }

    graph = nx.Graph()
    graph.add_nodes_from(names)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            if _markable(table, first) or _markable(table, second):
                graph.add_edge(first, second)

    marked_count: dict[str, int] = {name: 0 for name in names}
    key_use_count: dict[str, int] = {name: 0 for name in names}
    directives: list[PairDirective] = []

    def orientation_cost(key_attr: str, mark_attr: str) -> tuple:
        """Lower is better: avoid re-marking, prefer non-categorical keys."""
        key_is_categorical = table.schema.attribute(key_attr).is_categorical
        return (
            marked_count[mark_attr],       # spread marks across attributes
            key_is_categorical,            # prefer K / numeric place-holders
            key_use_count[key_attr],       # balance key-placeholder load
        )

    # Deterministic edge order: PK-anchored pairs first (the paper's
    # mark(K, A), mark(K, B)), then the remaining associations.
    def edge_order(edge: tuple[str, str]) -> tuple:
        first, second = edge
        return (pk not in edge, names.index(first), names.index(second))

    for first, second in sorted(graph.edges(), key=edge_order):
        candidates = []
        if _markable(table, second) and first != second:
            candidates.append(PairDirective(first, second))
        if _markable(table, first) and second != first:
            candidates.append(PairDirective(second, first))
        # never mark the primary key itself; reject starved key
        # place-holders and pairs whose alteration cost exceeds the bound
        def carrier_share(key_attr: str) -> float:
            pair_e = max(
                1, distinct[key_attr] // (2 * watermark_length)
            )
            return 1.0 / pair_e

        candidates = [
            d
            for d in candidates
            if d.mark_attribute != pk
            and distinct[d.key_attribute] >= minimum_distinct
            and carrier_share(d.key_attribute) <= max_carrier_share
        ]
        if not candidates:
            continue
        best = min(
            candidates,
            key=lambda d: orientation_cost(d.key_attribute, d.mark_attribute),
        )
        directives.append(best)
        marked_count[best.mark_attribute] += 1
        key_use_count[best.key_attribute] += 1
    if not directives:
        raise SpecError("no markable attribute pairs in the schema")
    return directives


@dataclass
class MultiEmbeddingResult:
    """Per-pair embedding outcomes plus the shared interference ledger."""

    passes: dict[str, EmbeddingResult] = field(default_factory=dict)
    specs: dict[str, EmbeddingSpec] = field(default_factory=dict)
    embedding_maps: dict[str, dict[Hashable, int]] = field(default_factory=dict)

    @property
    def total_applied(self) -> int:
        return sum(result.applied for result in self.passes.values())

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self.passes)


def embed_pairs(
    table: Table,
    watermark: Watermark,
    master_key: MarkKey,
    e: int,
    directives: list[PairDirective] | None = None,
    ecc_name: str = "majority",
    variant: str = "map",
    extra_constraints: list[Constraint] | None = None,
    backend: HashEngine | str | None = None,
) -> MultiEmbeddingResult:
    """Embed ``watermark`` once per attribute pair, in place.

    The default variant here is ``map`` (Figure 1(b)): pairs keyed on a
    categorical place-holder have few carriers, and the sequential slot
    assignment of the map variant guarantees full channel coverage where
    the keyed variant's hash-addressed slots would leave erasures.  The
    per-pair embedding maps ride along in the result (and in
    :class:`MultiEmbeddingResult.embedding_maps`) as detection input.

    Each pass derives its own subkeys from ``master_key`` (label-bound), and
    runs under a guard whose ledger freezes every cell touched by earlier
    passes — the §3.3 interference-avoidance hash-map.

    ``e`` is the encoding parameter for the primary-key-anchored pairs; for
    pairs keyed on a low-cardinality place-holder it is automatically
    reduced so that every watermark bit still gets carriers (roughly two
    per bit), and the reduced value is recorded in that pair's spec.

    ``backend`` selects the execution backend of every pass (the
    :func:`repro.core.embedding.embed` vocabulary); the default picks per
    relation size.  Note an explicit :class:`HashEngine` instance only
    makes sense for a single-directive plan — each pass hashes under its
    own derived key.
    """
    if directives is None:
        directives = build_pair_closure(table, watermark_length=len(watermark))
    result = MultiEmbeddingResult()
    frozen_cells: set[tuple[Hashable, str]] = set()
    for directive in directives:
        label = directive.label
        if label in result.passes:
            raise SpecError(f"duplicate pair directive {label!r}")
        pass_key = master_key.derive(label)
        population = carrier_population(table, directive.key_attribute)
        pair_e = min(e, max(1, population // (2 * len(watermark))))
        spec = make_spec(
            table,
            watermark,
            mark_attribute=directive.mark_attribute,
            e=pair_e,
            key_attribute=directive.key_attribute,
            ecc_name=ecc_name,
            variant=variant,
        )
        guard = QualityGuard(
            [LedgerConstraint(frozen_cells)] + list(extra_constraints or [])
        )
        guard.bind(table)
        # Each pass hashes under its own derived key; the shared registry
        # engine (resolved per pass inside embed) keeps those digests warm
        # for verify_pairs and for every re-detection an attack experiment
        # runs afterwards.
        outcome = embed(
            table, watermark, pass_key, spec, guard=guard, engine=backend,
        )
        frozen_cells |= guard.log.changed_cells()
        result.passes[label] = outcome
        result.specs[label] = spec
        if outcome.embedding_map is not None:
            result.embedding_maps[label] = outcome.embedding_map
    return result


@dataclass(frozen=True)
class MultiVerificationResult:
    """Aggregated verdict over every pair's detection."""

    per_pair: dict[str, VerificationResult]

    @property
    def detected(self) -> bool:
        """Rights are proven if *any* witness pair detects (§3.3: "more
        rights witnesses to testify"), or if the combined evidence of all
        witnesses is jointly significant even when none is individually."""
        if any(result.detected for result in self.per_pair.values()):
            return True
        significance = min(
            result.significance for result in self.per_pair.values()
        )
        return self.combined_false_hit_probability <= significance

    @property
    def combined_false_hit_probability(self) -> float:
        """Fisher-combined false-hit probability across all witnesses.

        The derived per-pair keys make the witnesses' bit extractions
        independent under the null (unmarked data), so Fisher's method
        applies: ``-2·Σ ln(p_i) ~ χ²(2k)``.  Several 9-of-10 witnesses —
        each individually above a strict bar — can still be overwhelming
        joint evidence; this is what a real dispute would argue.
        """
        from scipy import stats

        p_values = [
            max(result.false_hit_probability, 1e-300)
            for result in self.per_pair.values()
        ]
        if not p_values:
            return 1.0
        statistic = -2.0 * sum(math.log(p) for p in p_values)
        return float(stats.chi2.sf(statistic, 2 * len(p_values)))

    @property
    def detected_pairs(self) -> tuple[str, ...]:
        return tuple(
            label
            for label, result in sorted(self.per_pair.items())
            if result.detected
        )

    @property
    def best(self) -> VerificationResult:
        return min(
            self.per_pair.values(), key=lambda r: r.false_hit_probability
        )

    def summary(self) -> str:
        lines = [
            f"{label}: {result.summary()}"
            for label, result in sorted(self.per_pair.items())
        ]
        lines.append(
            f"overall: {'DETECTED' if self.detected else 'not detected'} "
            f"({len(self.detected_pairs)}/{len(self.per_pair)} witnesses)"
        )
        return "\n".join(lines)


def verify_pairs(
    table: Table,
    master_key: MarkKey,
    embedding: MultiEmbeddingResult,
    expected: Watermark,
    significance: float = 0.01,
    backend: HashEngine | str | None = None,
) -> MultiVerificationResult:
    """Verify every pair whose attributes survive in ``table``.

    Pairs whose key or mark attribute was projected away (A5) are skipped —
    the surviving pairs are exactly the witnesses the scheme banks on.

    Verification routes through the multi-pass detector
    (:func:`~repro.core.detection.verify_multipass`): witnesses sharing
    one spec shape run as a single fused kernel over the suspect
    relation's shared factorization, heterogeneous specs (the usual
    closure output — every directive marks a different pair) degrade to
    per-pair detections; both are bit-identical to a loop of
    :func:`~repro.core.detection.verify` calls.
    """
    groups: dict[EmbeddingSpec, list[str]] = {}
    for label, spec in embedding.specs.items():
        if (
            spec.key_attribute not in table.schema
            or spec.mark_attribute not in table.schema
        ):
            continue
        groups.setdefault(spec, []).append(label)
    per_pair: dict[str, VerificationResult] = {}
    for spec, labels in groups.items():
        results = verify_multipass(
            [table] * len(labels),
            [master_key.derive(label) for label in labels],
            spec,
            [expected] * len(labels),
            embedding_maps=[
                embedding.embedding_maps.get(label) for label in labels
            ],
            significance=significance,
            engine=backend,
        )
        per_pair.update(zip(labels, results))
    if not per_pair:
        raise SpecError(
            "no marked attribute pair survives in the suspect relation"
        )
    return MultiVerificationResult(per_pair)
