"""Core watermarking algorithms — the paper's primary contribution.

Embedding (§3.2.1), blind detection (§3.2.2), multi-attribute embeddings
(§3.3), the frequency-domain channel (§4.2), bijective-remapping recovery
(§4.5), data-addition reinforcement (§4.6), and the :class:`Watermarker`
facade tying them together.
"""

from .addition import AdditionResult, add_watermarked_tuples, integer_key_generator
from .detection import (
    DEFAULT_SIGNIFICANCE,
    DetectionResult,
    SlotVotes,
    VerificationResult,
    VoteAccumulator,
    detect,
    extract_slot_votes,
    extract_slots,
    extract_slots_multipass,
    false_hit_probability,
    verify,
    verify_multipass,
)
from .embedding import (
    EmbeddingResult,
    EmbeddingSpec,
    VARIANT_KEYED,
    VARIANT_MAP,
    default_channel_length,
    embed,
    embedded_value_index,
    embedded_value_index_from_digest,
    make_spec,
    slot_index,
    slot_index_from_digest,
    value_pair_count,
)
from .errors import BandwidthError, DetectionError, SpecError, WatermarkingError
from .incremental import (
    IncrementalStats,
    IncrementalWatermarker,
    incremental_for,
    verify_watermark_consistency,
)
from .fitness import count_fit, expected_bandwidth, fit_keys, fit_rows, is_fit
from .kernels import VECTOR_MIN_ROWS, auto_backend, numpy_available
from .frequency import (
    FrequencyEmbeddingResult,
    FrequencyMarkRecord,
    FrequencyVerification,
    default_quantum,
    detect_frequency,
    embed_frequency,
    verify_frequency,
)
from .multiattribute import (
    LedgerConstraint,
    MultiEmbeddingResult,
    MultiVerificationResult,
    PairDirective,
    build_pair_closure,
    embed_pairs,
    verify_pairs,
)
from .pipeline import EmbedOutcome, MarkRecord, VerifyOutcome, Watermarker
from .remapping import (
    FrequencyProfile,
    apply_mapping,
    estimate_profile,
    recover_mapping,
    recovery_quality,
)
from .watermark import Watermark

__all__ = [
    "AdditionResult",
    "BandwidthError",
    "DEFAULT_SIGNIFICANCE",
    "DetectionError",
    "DetectionResult",
    "EmbedOutcome",
    "EmbeddingResult",
    "EmbeddingSpec",
    "FrequencyEmbeddingResult",
    "FrequencyMarkRecord",
    "FrequencyProfile",
    "FrequencyVerification",
    "IncrementalStats",
    "IncrementalWatermarker",
    "LedgerConstraint",
    "MarkRecord",
    "MultiEmbeddingResult",
    "MultiVerificationResult",
    "PairDirective",
    "SlotVotes",
    "SpecError",
    "VARIANT_KEYED",
    "VARIANT_MAP",
    "VerificationResult",
    "VoteAccumulator",
    "VerifyOutcome",
    "Watermark",
    "VECTOR_MIN_ROWS",
    "Watermarker",
    "WatermarkingError",
    "add_watermarked_tuples",
    "auto_backend",
    "apply_mapping",
    "build_pair_closure",
    "count_fit",
    "default_channel_length",
    "default_quantum",
    "detect",
    "detect_frequency",
    "embed",
    "embed_frequency",
    "embed_pairs",
    "embedded_value_index",
    "embedded_value_index_from_digest",
    "estimate_profile",
    "expected_bandwidth",
    "extract_slot_votes",
    "extract_slots",
    "extract_slots_multipass",
    "false_hit_probability",
    "fit_keys",
    "fit_rows",
    "incremental_for",
    "integer_key_generator",
    "is_fit",
    "make_spec",
    "numpy_available",
    "recover_mapping",
    "recovery_quality",
    "slot_index",
    "slot_index_from_digest",
    "value_pair_count",
    "verify",
    "verify_frequency",
    "verify_multipass",
    "verify_pairs",
    "verify_watermark_consistency",
]
