"""Bijective attribute re-mapping recovery (§4.5).

Attack A6: Mallory re-maps the categorical values ``{a_1..a_nA}`` through a
bijection into a foreign domain ``{a'_1..a'_nA}`` (and may even sell a
"reverse mapper" alongside).  Detection then cannot resolve ``T(A) = a_t``.

The paper's counter: over large data sets the values *do* carry a
distinguishing property — their occurrence frequency.  Detection samples the
suspect data's frequencies, sorts both frequency profiles, and aligns values
rank-by-rank to reconstruct (most of) the inverse mapping, which is then
applied before bit decoding.

The recovery is inherently statistical: values with near-identical
frequencies can swap ranks (the paper notes uniformly distributed values
defeat it entirely).  :func:`recovery_quality` quantifies how much of a
known mapping was recovered, which the frequency-channel bench reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable

from ..relational import Table, sorted_frequency_profile
from .errors import DetectionError


@dataclass(frozen=True)
class FrequencyProfile:
    """The owner's escrowed frequency fingerprint of an attribute.

    Recorded at embedding time (*after* marking, so the profile matches what
    was published): values with their normalised occurrence frequencies.
    """

    attribute: str
    frequencies: tuple[tuple[Hashable, float], ...]  # sorted by frequency desc

    @classmethod
    def capture(cls, table: Table, attribute: str) -> "FrequencyProfile":
        from . import kernels

        cached = kernels.cached_unique_counts(table, attribute)
        if cached is not None:
            # A fresh factorization exists (the profile sort is
            # insertion-order independent): one bincount, no column scan.
            counts = dict(zip(*cached))
        else:
            counts = Counter(table.column_view(attribute))
        total = sum(counts.values())
        if total == 0:
            raise DetectionError(
                f"cannot profile {attribute!r} of an empty relation"
            )
        normalised = {value: count / total for value, count in counts.items()}
        return cls(
            attribute=attribute,
            frequencies=tuple(sorted_frequency_profile(normalised)),
        )

    @property
    def values_by_rank(self) -> tuple[Hashable, ...]:
        return tuple(value for value, _ in self.frequencies)

    def to_dict(self) -> dict:
        return {
            "attribute": self.attribute,
            "frequencies": [[value, freq] for value, freq in self.frequencies],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FrequencyProfile":
        return cls(
            attribute=payload["attribute"],
            frequencies=tuple(
                (value, float(freq)) for value, freq in payload["frequencies"]
            ),
        )


def estimate_profile(table: Table, attribute: str) -> FrequencyProfile:
    """Sample the suspect data's frequency profile (``E[f_A(a'_j)]``)."""
    return FrequencyProfile.capture(table, attribute)


class _Unrecovered:
    """Sentinel marking suspect values whose original could not be
    confidently identified; it is never a member of any domain, so
    detection treats such cells as erasures rather than noise votes."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unrecovered>"

    def __hash__(self) -> int:
        return hash("repro.remapping.UNRECOVERED")


UNRECOVERED = _Unrecovered()


def recover_mapping(
    suspect: Table,
    original_profile: FrequencyProfile,
    drop_ambiguous: bool = False,
    confidence_z: float = 2.0,
) -> dict[Hashable, Hashable]:
    """Reconstruct the inverse of a bijective re-mapping by rank alignment.

    Returns ``{suspect_value -> original_value}``.  When the suspect data
    shows more distinct values than the original profile (e.g. added
    tuples with foreign values), the lowest-frequency extras are left
    unmapped; detection skips unmapped values.

    Rank alignment is only trustworthy where frequencies are *distinct*:
    inside a run of near-equal frequencies (the Zipf tail, or the uniform
    worst case the paper calls out) the assignment is arbitrary.  With
    ``drop_ambiguous`` every suspect value inside such a run maps to the
    :data:`UNRECOVERED` sentinel — outside every domain — so the
    association-channel decoder sees erasures (absorbed by majority
    voting) instead of wrong bits.  Runs are detected by comparing
    consecutive frequency gaps against a ``confidence_z``-sigma binomial
    sampling-noise estimate.
    """
    if original_profile.attribute not in suspect.schema:
        raise DetectionError(
            f"attribute {original_profile.attribute!r} missing from the "
            f"suspect relation"
        )
    suspect_profile = estimate_profile(suspect, original_profile.attribute)
    original_ranked = original_profile.values_by_rank
    suspect_ranked = suspect_profile.values_by_rank
    mapping = {
        suspect_value: original_value
        for suspect_value, original_value in zip(suspect_ranked, original_ranked)
    }
    if not drop_ambiguous:
        return mapping

    sample_size = max(1, len(suspect))
    frequencies = [freq for _, freq in suspect_profile.frequencies]

    def noise(freq: float) -> float:
        return confidence_z * ((freq * (1.0 - freq) / sample_size) ** 0.5)

    ambiguous = [False] * len(frequencies)
    for index in range(len(frequencies) - 1):
        gap = frequencies[index] - frequencies[index + 1]
        if gap < max(noise(frequencies[index]), noise(frequencies[index + 1])):
            ambiguous[index] = True
            ambiguous[index + 1] = True
    for index, suspect_value in enumerate(suspect_ranked):
        if index < len(ambiguous) and ambiguous[index] and suspect_value in mapping:
            mapping[suspect_value] = UNRECOVERED
    return mapping


def apply_mapping(
    table: Table, attribute: str, mapping: dict[Hashable, Hashable]
) -> Table:
    """Translate ``attribute`` through ``mapping`` into a new relation.

    Values without a mapping entry are kept as-is (they will fall outside
    the original domain and be skipped by detection).  The attribute's
    domain is rebuilt from the translated values plus the mapping range so
    the canonical ordering matches the original domain's.
    """
    position = table.schema.position(attribute)
    translated_rows = [
        tuple(
            mapping.get(cell, cell) if slot == position else cell
            for slot, cell in enumerate(row)
        )
        for row in table
    ]
    meta = table.schema.attribute(attribute)
    if meta.is_categorical:
        observed = {row[position] for row in translated_rows}
        observed |= set(mapping.values())
        observed.discard(UNRECOVERED)
        if not observed:
            raise DetectionError(
                f"no recoverable {attribute!r} values after applying the map"
            )
        from ..relational import CategoricalDomain

        schema = table.schema.replace_attribute(
            meta.with_domain(CategoricalDomain(observed))
        )
    else:
        schema = table.schema
    return Table(schema, translated_rows, name=f"{table.name}_unmapped")


def recovery_quality(
    true_inverse: dict[Hashable, Hashable],
    recovered: dict[Hashable, Hashable],
) -> float:
    """Fraction of the true inverse mapping recovered correctly."""
    if not true_inverse:
        return 1.0
    correct = sum(
        recovered.get(suspect_value) == original_value
        for suspect_value, original_value in true_inverse.items()
    )
    return correct / len(true_inverse)
