"""NumPy vector kernels — the ``VECTOR`` execution backend.

PR 1 made hashing O(distinct values) and PR 2 made sweeps
embed-once/attack-many, which leaves the Python interpreter itself as the
hot path: the engine-backed embed/detect loops still walk every row doing
dict lookups (``fit[key_value]``, ``slot_of[key_value]``) at a few hundred
nanoseconds each.  This module replaces those per-row loops with array
programs over two cached building blocks:

* **column codes** — :meth:`repro.relational.table.Table.column_codes`
  factorizes a column once into ``(int32 codes, uniques)``; clones inherit
  the factorization copy-on-write, so attack trials and repeated
  re-detections never re-factorize an untouched column;
* **plan arrays** — :meth:`repro.crypto.engine.HashEngine.fitness_array` /
  ``slot_array`` / ``pair_array`` project the engine's memoized derived
  maps onto the uniques once per factorization, cached weakly per
  :class:`~repro.relational.table.ColumnCodes` object.

On top of those, detection is a handful of gathers and one
``np.bincount(slot * 2 + bit)`` tally, and embedding reduces to a boolean
gather for carrier selection, ``t = 2 * pair + bit`` target coding, and a
batched :meth:`~repro.relational.table.Table.set_values` write-back — all
bit-identical to the SCALAR and ENGINE paths (pinned by the equivalence
suites).  A warm vector re-detection performs zero SHA-256 calls *and*
zero per-row Python-level hash lookups: only array code touches row-count
data.

Backend selection
-----------------

``engine=``/``backend=`` parameters across the stack accept, besides a
:class:`~repro.crypto.HashEngine` instance:

========  ==================================================================
SCALAR    row-at-a-time reference implementation
ENGINE    batched columnar engine path (PR 1)
VECTOR    these kernels (requires numpy)
AUTO      VECTOR when numpy imports and the relation has at least
          :data:`VECTOR_MIN_ROWS` rows, ENGINE otherwise (the default)
========  ==================================================================

Below :data:`VECTOR_MIN_ROWS` the constant cost of array materialization
is not worth amortizing and the engine path's warm dict lookups win.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..crypto import AUTO, ENGINE, SCALAR, VECTOR, HashEngine
from ..relational import Table
from .errors import DetectionError

try:  # numpy rides in on the scipy dependency; gate it anyway
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on slim installs
    np = None

#: auto heuristic: relations at least this large run on the vector backend
VECTOR_MIN_ROWS = 4096

_VARIANT_KEYED = "keyed"  # mirrors repro.core.embedding.VARIANT_KEYED

#: kernel-launch telemetry: how many single-pass detections, fused
#: multi-pass detections, embedding kernels and streaming vote
#: extractions ran.  The perf-smoke suite asserts a warm sweep cell
#: performs exactly one ``detect_multipass`` launch and zero per-pass
#: ``detect`` launches.
KERNEL_CALLS = {
    "detect": 0,
    "detect_multipass": 0,
    "embed": 0,
    "detect_votes": 0,
    "detect_multipass_votes": 0,
}


def reset_kernel_calls() -> None:
    """Zero the :data:`KERNEL_CALLS` counters (test isolation)."""
    for name in KERNEL_CALLS:
        KERNEL_CALLS[name] = 0


def numpy_available() -> bool:
    """Did numpy import? (The AUTO heuristic's gate.)"""
    return np is not None


def auto_backend(row_count: int) -> str:
    """The backend AUTO resolves to for a relation of ``row_count`` rows."""
    if np is not None and row_count >= VECTOR_MIN_ROWS:
        return VECTOR
    return ENGINE


def use_vector(engine: HashEngine | str | None, table: Table) -> bool:
    """Should this ``engine=`` parameter run on the vector kernels?

    ``VECTOR`` forces them (and fails loudly without numpy); ``AUTO`` /
    ``None`` consult :func:`auto_backend`; everything else — ``SCALAR``,
    ``ENGINE``, or an explicit :class:`HashEngine` instance — keeps its
    historical path.
    """
    if engine == VECTOR:
        if np is None:
            raise RuntimeError(
                "the VECTOR backend requires numpy, which is not installed"
            )
        return True
    if engine is None or engine == AUTO:
        return auto_backend(len(table)) == VECTOR
    return False


def warm_codes(table: Table, *attributes: str) -> None:
    """Pre-factorize columns on ``table`` so clones inherit the codes.

    :meth:`Table.clone` copies the codes cache copy-on-write; factorizing
    the *base* relation before cloning is what lets every marking pass and
    attack trial over one base share a single factorization (and the plan
    arrays keyed on it).
    """
    for attribute in attributes:
        table.column_codes(attribute)


# -- detection ----------------------------------------------------------------

def _decode_bits(mark_uniques, domain, value_mapping):
    """Per-unique mark decoding: translate (``value_mapping``), reject
    values outside the domain (-1), else the bit is the canonical index
    parity.  Shared by the single-pass and fused multi-pass kernels."""
    bits_u = np.full(len(mark_uniques), -1, dtype=np.int8)
    in_domain = domain.__contains__
    index_of = domain.index_of
    if value_mapping is None:
        for position, value in enumerate(mark_uniques):
            if in_domain(value):
                bits_u[position] = index_of(value) & 1
    else:
        translate = value_mapping.get
        for position, value in enumerate(mark_uniques):
            value = translate(value, value)
            if in_domain(value):
                bits_u[position] = index_of(value) & 1
    return bits_u


def _gather_single(
    table: Table,
    spec,
    domain,
    embedding_map: dict[Hashable, int] | None,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine,
):
    """The shared per-row vote gather of one detection pass.

    Returns ``(slots_v, bits_v, fit_count)``: the slot and bit of every
    decodable vote, in physical row order — the inputs both the tallying
    kernel (:func:`extract_slots_vector`) and the streaming vote kernel
    (:func:`extract_votes_vector`) consume.
    """
    key_codes = table.column_codes(spec.key_attribute)
    mark_codes = table.column_codes(spec.mark_attribute)
    channel_length = spec.channel_length

    fit_u = engine.fitness_array(key_codes, spec.e)
    row_fit = fit_u[key_codes.codes]
    fit_count = int(np.count_nonzero(row_fit))

    bits_u = _decode_bits(mark_codes.uniques, domain, value_mapping)
    row_bits = bits_u[mark_codes.codes]
    valid = row_fit & (row_bits >= 0)

    if spec.variant == _VARIANT_KEYED:
        slot_u = engine.slot_array(key_codes, channel_length, spec.e)
        slots_v = slot_u[key_codes.codes[valid]].astype(np.int64)
        bits_v = row_bits[valid]
    else:
        assert embedding_map is not None
        key_uniques = key_codes.uniques
        slot_map_u = np.zeros(len(key_uniques), dtype=np.int64)
        mapped_u = np.zeros(len(key_uniques), dtype=np.bool_)
        lookup = embedding_map.get
        for position, value in enumerate(key_uniques):
            slot = lookup(value)
            if slot is None:
                continue
            mapped_u[position] = True
            slot_map_u[position] = slot
        use = valid & mapped_u[key_codes.codes]
        slots_v = slot_map_u[key_codes.codes[use]]
        bits_v = row_bits[use]
        out_of_range = (slots_v < 0) | (slots_v >= channel_length)
        if out_of_range.any():
            bad = int(slots_v[out_of_range][0])
            raise DetectionError(
                f"embedding map entry {bad} outside channel "
                f"[0, {channel_length})"
            )
    return slots_v, bits_v, fit_count


def extract_slots_vector(
    table: Table,
    spec,
    domain,
    embedding_map: dict[Hashable, int] | None,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine,
) -> tuple[list[int | None], int]:
    """Array-kernel slot recovery; bit-identical to the reference scan.

    The per-row work is pure NumPy: fitness and slot gathers through the
    key column's codes, bit decoding through the mark column's codes, and
    a single ``bincount`` over ``slot * 2 + bit``.  Python-level loops run
    only over *uniques* (domain decoding, map-variant slot resolution) and
    over the channel (verdict assembly).
    """
    KERNEL_CALLS["detect"] += 1
    channel_length = spec.channel_length
    slots_v, bits_v, fit_count = _gather_single(
        table, spec, domain, embedding_map, value_mapping, engine
    )

    counts = np.bincount(
        slots_v * 2 + bits_v, minlength=2 * channel_length
    )
    zeros = counts[0::2]
    ones = counts[1::2]
    total = zeros + ones

    # Majority verdict per slot; exact ties fall back to the first vote in
    # physical row order (np.unique's return_index is documented to give
    # first occurrences).
    verdict = (ones > zeros).astype(np.int64)
    ties = (total > 0) & (ones == zeros)
    if ties.any():
        first_slots, first_positions = np.unique(slots_v, return_index=True)
        firsts = np.zeros(channel_length, dtype=np.int64)
        firsts[first_slots] = bits_v[first_positions]
        verdict = np.where(ties, firsts, verdict)

    slots: list[int | None] = [
        bit if observed else None
        for bit, observed in zip(verdict.tolist(), total.tolist())
    ]
    return slots, fit_count


def extract_votes_vector(
    table: Table,
    spec,
    domain,
    embedding_map: dict[Hashable, int] | None,
    value_mapping: dict[Hashable, Hashable] | None,
    engine: HashEngine,
):
    """Array-kernel *vote tally* for one chunk of a streamed detection.

    Same gather as :func:`extract_slots_vector`, but instead of resolving
    slot verdicts it returns the raw per-slot tallies —
    ``(zeros, ones, firsts, fit_count)`` where ``firsts[slot]`` is the
    first vote of the chunk in physical row order (``-1`` when the chunk
    never addressed the slot).  Tallies merge associatively across chunks,
    and keeping the per-chunk first votes lets the accumulator preserve
    the global first-vote tie rule exactly.
    """
    KERNEL_CALLS["detect_votes"] += 1
    channel_length = spec.channel_length
    slots_v, bits_v, fit_count = _gather_single(
        table, spec, domain, embedding_map, value_mapping, engine
    )
    counts = np.bincount(
        slots_v * 2 + bits_v, minlength=2 * channel_length
    )
    zeros = counts[0::2]
    ones = counts[1::2]
    firsts = np.full(channel_length, -1, dtype=np.int64)
    # np.unique's return_index is documented to give first occurrences,
    # and slots_v/bits_v are in physical row order.
    first_slots, first_positions = np.unique(slots_v, return_index=True)
    firsts[first_slots] = bits_v[first_positions]
    return zeros, ones, firsts, fit_count


def shared_key_codes(tables, key_attribute: str):
    """The one :class:`ColumnCodes` object every table in ``tables``
    holds for ``key_attribute`` — or ``None`` when they do not share.

    Sharing happens by construction on the attack-sweep hot path: every
    keyed pass clones the same base relation (inheriting its key-column
    factorization copy-on-write) and the attacks only rewrite the mark
    column, so the fifteen attacked clones of a sweep cell present the
    *identical* factorization object.  Identity — not equality — is the
    test, because the stacked plan caches are keyed per object.
    """
    if np is None or not tables:
        return None
    if all(table is tables[0] for table in tables[1:]):
        return tables[0].column_codes(key_attribute)
    codes = tables[0].column_codes(key_attribute, build=False)
    if codes is None:
        return None
    for table in tables[1:]:
        if table.column_codes(key_attribute, build=False) is not codes:
            return None
    return codes


def _gather_multipass(
    tables,
    spec,
    domains,
    embedding_maps,
    value_mapping: dict[Hashable, Hashable] | None,
    engines,
):
    """The shared stacked vote gather of P fused detection passes.

    Returns ``(pass_rows, slots_v, bits_v, fit_counts)``: the pass, slot
    and bit of every decodable vote — ``np.nonzero`` is row-major, so one
    pass's entries appear in ascending physical row order — plus the
    per-pass fit-row counts.  Consumed by :func:`detect_multipass` and the
    streaming :func:`detect_multipass_votes`.
    """
    key_codes = tables[0].column_codes(spec.key_attribute)
    channel_length = spec.channel_length
    pass_count = len(tables)

    fit_stack = HashEngine.fitness_stack(engines, key_codes, spec.e)
    fit_rows = fit_stack[:, key_codes.codes]
    fit_counts = fit_rows.sum(axis=1)

    # Mark bits per pass; passes whose mark factorization object and
    # domain coincide (e.g. verify_pairs over one table) decode once.
    decoded: dict[tuple[int, int], Any] = {}
    bits_rows = []
    for table, domain in zip(tables, domains):
        mark_codes = table.column_codes(spec.mark_attribute)
        cache_key = (id(mark_codes), id(domain))
        bits = decoded.get(cache_key)
        if bits is None:
            bits_u = _decode_bits(mark_codes.uniques, domain, value_mapping)
            bits = bits_u[mark_codes.codes]
            decoded[cache_key] = bits
        bits_rows.append(bits)
    bits_stack = np.stack(bits_rows)

    valid = fit_rows & (bits_stack >= 0)
    row_codes = key_codes.codes
    if spec.variant == _VARIANT_KEYED:
        slot_stack = HashEngine.slot_stack(
            engines, key_codes, channel_length, spec.e
        )
        pass_rows, row_positions = np.nonzero(valid)
        slots_v = slot_stack[pass_rows, row_codes[row_positions]].astype(
            np.int64
        )
        bits_v = bits_stack[pass_rows, row_positions].astype(np.int64)
    else:
        assert embedding_maps is not None
        key_uniques = key_codes.uniques
        slot_map_stack = np.zeros(
            (pass_count, len(key_uniques)), dtype=np.int64
        )
        mapped_stack = np.zeros((pass_count, len(key_uniques)), dtype=np.bool_)
        for index, embedding_map in enumerate(embedding_maps):
            lookup = embedding_map.get
            for position, value in enumerate(key_uniques):
                slot = lookup(value)
                if slot is None:
                    continue
                mapped_stack[index, position] = True
                slot_map_stack[index, position] = slot
        use = valid & mapped_stack[:, row_codes]
        pass_rows, row_positions = np.nonzero(use)
        slots_v = slot_map_stack[pass_rows, row_codes[row_positions]]
        bits_v = bits_stack[pass_rows, row_positions].astype(np.int64)
        out_of_range = (slots_v < 0) | (slots_v >= channel_length)
        if out_of_range.any():
            bad = int(slots_v[out_of_range][0])
            raise DetectionError(
                f"embedding map entry {bad} outside channel "
                f"[0, {channel_length})"
            )
    return pass_rows, slots_v, bits_v, fit_counts


def detect_multipass(
    tables,
    spec,
    domains,
    embedding_maps,
    value_mapping: dict[Hashable, Hashable] | None,
    engines,
) -> list[tuple[list[int | None], int]]:
    """Fused slot recovery for P keyed passes sharing one key-column
    factorization: one carrier gather and one ``bincount`` tally.

    ``tables[p]`` is pass ``p``'s suspect relation (often fifteen attacked
    clones of one base), ``engines[p]`` the pass's keyed engine and
    ``domains[p]`` its resolved mark-value domain; all passes share
    ``spec``.  Per-pass work above the row count is limited to mark-bit
    decoding over *uniques*; everything row-shaped runs once, stacked:
    fitness and slots gather through ``(P, U)`` plan stacks
    (:meth:`~repro.crypto.HashEngine.fitness_stack` /
    :meth:`~repro.crypto.HashEngine.slot_stack`) and every vote of every
    pass lands in a single ``bincount(pass·2L + slot·2 + bit)``.  Tie
    resolution is per pass, first vote in physical row order — output is
    bit-identical to P separate :func:`extract_slots_vector` calls.

    Callers must have verified sharing via :func:`shared_key_codes`.
    """
    KERNEL_CALLS["detect_multipass"] += 1
    channel_length = spec.channel_length
    pass_count = len(tables)
    pass_rows, slots_v, bits_v, fit_counts = _gather_multipass(
        tables, spec, domains, embedding_maps, value_mapping, engines
    )

    counts = np.bincount(
        pass_rows * (2 * channel_length) + slots_v * 2 + bits_v,
        minlength=pass_count * 2 * channel_length,
    ).reshape(pass_count, channel_length, 2)
    zeros = counts[:, :, 0]
    ones = counts[:, :, 1]
    total = zeros + ones

    verdict = (ones > zeros).astype(np.int64)
    ties = (total > 0) & (ones == zeros)
    if ties.any():
        # First vote per (pass, slot) in physical row order: np.nonzero is
        # row-major, so entries of one pass appear in ascending row order
        # and np.unique's return_index picks exactly the first of each.
        flat = pass_rows * channel_length + slots_v
        first_keys, first_positions = np.unique(flat, return_index=True)
        firsts = np.zeros(pass_count * channel_length, dtype=np.int64)
        firsts[first_keys] = bits_v[first_positions]
        verdict = np.where(
            ties, firsts.reshape(pass_count, channel_length), verdict
        )

    results: list[tuple[list[int | None], int]] = []
    verdict_lists = verdict.tolist()
    total_lists = total.tolist()
    for index in range(pass_count):
        slots: list[int | None] = [
            bit if observed else None
            for bit, observed in zip(verdict_lists[index], total_lists[index])
        ]
        results.append((slots, int(fit_counts[index])))
    return results


def detect_multipass_votes(
    tables,
    spec,
    domains,
    embedding_maps,
    value_mapping: dict[Hashable, Hashable] | None,
    engines,
):
    """Fused *vote tally* for P passes over one chunk of a streamed
    detection.

    Same stacked gather as :func:`detect_multipass` — one carrier gather
    and one ``bincount`` for all passes — but it returns the raw per-pass
    tallies ``(zeros, ones, firsts, fit_count)`` (``firsts[slot] = -1``
    when pass ``p`` never addressed the slot in this chunk) instead of
    resolving verdicts, so a per-pass accumulator can merge chunks while
    preserving each pass's global first-vote tie rule.  On the streaming
    hot path every pass detects on the *same* chunk table, so the shared
    key-factorization precondition holds trivially.
    """
    KERNEL_CALLS["detect_multipass_votes"] += 1
    channel_length = spec.channel_length
    pass_count = len(tables)
    pass_rows, slots_v, bits_v, fit_counts = _gather_multipass(
        tables, spec, domains, embedding_maps, value_mapping, engines
    )

    counts = np.bincount(
        pass_rows * (2 * channel_length) + slots_v * 2 + bits_v,
        minlength=pass_count * 2 * channel_length,
    ).reshape(pass_count, channel_length, 2)
    flat = pass_rows * channel_length + slots_v
    first_keys, first_positions = np.unique(flat, return_index=True)
    firsts = np.full(pass_count * channel_length, -1, dtype=np.int64)
    firsts[first_keys] = bits_v[first_positions]
    firsts = firsts.reshape(pass_count, channel_length)
    return [
        (counts[p, :, 0], counts[p, :, 1], firsts[p], int(fit_counts[p]))
        for p in range(pass_count)
    ]


# -- embedding ----------------------------------------------------------------

def embed_vector(
    table: Table,
    spec,
    domain,
    wm_data,
    guard,
    result,
    engine: HashEngine,
):
    """Array-kernel embedding pass; mutates ``table`` and fills ``result``.

    Carrier selection, slot addressing and target coding
    (``t = 2 * pair + bit``) are vectorized over the key column's codes;
    the remaining per-carrier loop only assembles write batches.  With an
    unconstrained guard the write-back goes through one batched
    :meth:`Table.set_values` call (guard log/report/statistics maintained
    identically); with constraints every cell still flows through
    :meth:`QualityGuard.apply_group`, preserving veto-and-rollback
    semantics cell by cell.
    """
    KERNEL_CALLS["embed"] += 1
    key_codes = table.column_codes(spec.key_attribute)
    mark_codes = table.column_codes(spec.mark_attribute)
    channel_length = spec.channel_length
    keyed_variant = spec.variant == _VARIANT_KEYED

    fit_u = engine.fitness_array(key_codes, spec.e)
    pair_u = engine.pair_array(key_codes, domain.size, spec.e)

    primary_path = spec.key_attribute == table.primary_key
    if primary_path:
        # Codes are row positions (pk factorization is the identity), so
        # the fit uniques are exactly the carrier rows.
        carrier_uidx = np.flatnonzero(fit_u)
        first_rows = carrier_uidx
        group_rows = None
        pk_column = None
    else:
        row_positions = np.flatnonzero(fit_u[key_codes.codes])
        fit_codes = key_codes.codes[row_positions]
        order = np.argsort(fit_codes, kind="stable")
        group_rows = row_positions[order]
        sorted_codes = fit_codes[order]
        carrier_uidx = np.flatnonzero(fit_u)
        starts = np.searchsorted(sorted_codes, carrier_uidx, side="left")
        ends = np.searchsorted(sorted_codes, carrier_uidx, side="right")
        first_rows = group_rows[starts]
        pk_column = table.column_view(table.primary_key)

    carrier_count = len(carrier_uidx)
    result.fit_count = carrier_count
    if carrier_count == 0:
        return result

    wm = np.asarray(wm_data, dtype=np.int64)
    if keyed_variant:
        slot_u = engine.slot_array(key_codes, channel_length, spec.e)
        slots_c = slot_u[carrier_uidx].astype(np.int64)
    else:
        slots_c = np.arange(carrier_count, dtype=np.int64) % channel_length
    targets_c = 2 * pair_u[carrier_uidx].astype(np.int64) + wm[slots_c]

    key_uniques = key_codes.uniques
    mark_uniques = mark_codes.uniques
    first_mark_codes = mark_codes.codes[first_rows]
    value_at = domain.value_at
    slots_written = result.slots_written
    embedding_map = result.embedding_map
    attribute = spec.mark_attribute

    carrier_list = carrier_uidx.tolist()
    slots_list = slots_c.tolist()
    targets_list = targets_c.tolist()
    first_marks = first_mark_codes.tolist()

    fast_guard = not guard.constraints
    if fast_guard:
        context = guard.context
        deltas = context.count_deltas.get(attribute)
        if deltas is None:
            from collections import Counter

            deltas = context.count_deltas[attribute] = Counter()
        log_record = guard.log.record
        staged: list[tuple[Hashable, Any]] = []
        stage = staged.append
        if not primary_path:
            mark_code_list = mark_codes.codes.tolist()
            starts_list = starts.tolist()
            ends_list = ends.tolist()
            rows_list = group_rows.tolist()

    for position in range(carrier_count):
        key_value = key_uniques[carrier_list[position]]
        slot = slots_list[position]
        if not keyed_variant:
            embedding_map[key_value] = slot
        new_value = value_at(targets_list[position])
        if mark_uniques[first_marks[position]] == new_value:
            result.unchanged += 1
            slots_written.add(slot)
            continue
        if fast_guard:
            # Unconstrained guard: nothing can veto, so stage the batched
            # write and maintain the guard's log, report and incremental
            # statistics exactly as a loop of guard.apply calls would.
            if primary_path:
                stage((key_value, new_value))
                old_value = mark_uniques[first_marks[position]]
                deltas[old_value] -= 1
                deltas[new_value] += 1
                log_record(key_value, attribute, old_value, new_value)
            else:
                for row in rows_list[
                    starts_list[position]:ends_list[position]
                ]:
                    old_value = mark_uniques[mark_code_list[row]]
                    if old_value == new_value:
                        guard.report.noop += 1
                        continue
                    stage((pk_column[row], new_value))
                    deltas[old_value] -= 1
                    deltas[new_value] += 1
                    log_record(pk_column[row], attribute, old_value, new_value)
            result.applied += 1
            slots_written.add(slot)
            continue
        if primary_path:
            group = (key_value,)
        else:
            group = [
                pk_column[row]
                for row in group_rows[starts[position]:ends[position]].tolist()
            ]
        if guard.apply_group(group, attribute, new_value):
            result.applied += 1
            slots_written.add(slot)
        else:
            result.vetoed += 1

    if fast_guard and staged:
        table.set_values(attribute, staged)
        guard.context.change_count += len(staged)
        guard.report.applied += len(staged)
    return result


# -- histograms ---------------------------------------------------------------

def cached_unique_counts(
    table: Table, attribute: str
) -> tuple[list[Hashable], list[int]] | None:
    """``(uniques, counts)`` of a column via one ``bincount`` over its
    codes — but only when a fresh factorization is already cached.

    ``None`` tells the caller to fall back to a plain scan (a C-speed
    ``Counter`` pass beats a cold Python-level factorization it may never
    amortize).  Unique order is first physical encounter — the same
    insertion order ``collections.Counter`` produces — and counts are
    integers, so histogram consumers are bit-identical either way.
    """
    if np is None:
        return None
    codes = table.column_codes(attribute, build=False)
    if codes is None:
        return None
    counts = np.bincount(codes.codes, minlength=len(codes.uniques))
    return codes.uniques, counts.tolist()
