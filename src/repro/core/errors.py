"""Exceptions raised by the core watermarking algorithms."""

from __future__ import annotations


class WatermarkingError(Exception):
    """Base class for all core watermarking errors."""


class BandwidthError(WatermarkingError):
    """The relation cannot carry the requested watermark (§2.4).

    Raised when the available embedding bandwidth (roughly ``N/e`` fit
    tuples, or ``floor(nA/2)`` value pairs) is too small for the watermark —
    the "watermarking could potentially fail due to lack of bandwidth"
    condition the paper calls out.
    """


class SpecError(WatermarkingError):
    """An embedding specification is malformed or inconsistent."""


class PermanentError(WatermarkingError):
    """A failure retrying can never fix — bad configuration or bad data.

    The reliability layer (:mod:`repro.reliability.retry`) classifies
    every :class:`WatermarkingError` as permanent and fails fast; raise
    this subclass to mark a failure as unretryable when no more specific
    error class fits (e.g. wrapping an ``OSError`` that is known to be
    deterministic, which would otherwise classify as transient).
    """


class DetectionError(WatermarkingError):
    """Blind detection could not be performed on the suspect relation."""
