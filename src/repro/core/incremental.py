"""Incremental updates (§4.3).

"Our method supports incremental updates naturally.  As updates occur to
the data, the resulting tuples can be evaluated on the fly for 'fitness'
and watermarked accordingly."

:class:`IncrementalWatermarker` wraps a live, already-marked relation and
keeps the watermark consistent through inserts, primary-key changes and
mark-attribute updates — the operational mode of the paper's B2B scenario,
where the relation keeps evolving after the initial marking pass.

Only the ``keyed`` variant is supported: its slot addressing is a pure
function of the tuple's key, so a fresh tuple can join the channel without
touching any embedding state (the very property §3.2.1 credits for
surviving data addition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..crypto import HashEngine, MarkKey, resolve_engine
from ..relational import Table
from .embedding import EmbeddingSpec, VARIANT_KEYED
from .errors import SpecError
from .pipeline import MarkRecord
from .watermark import Watermark


@dataclass
class IncrementalStats:
    """Running counters of on-the-fly marking activity."""

    inserted: int = 0
    inserted_carriers: int = 0
    value_updates: int = 0
    value_updates_reverted: int = 0
    key_updates: int = 0
    remarked_after_key_update: int = 0
    log: list[tuple[str, Hashable]] = field(default_factory=list)


class IncrementalWatermarker:
    """Keeps a marked relation's watermark consistent under updates."""

    def __init__(
        self,
        table: Table,
        key: MarkKey,
        record: MarkRecord,
        engine: HashEngine | None = None,
    ):
        spec = record.spec
        if spec.variant != VARIANT_KEYED:
            raise SpecError(
                "incremental updates require the keyed variant (the map "
                "variant's slot assignment is fixed at embedding time)"
            )
        if spec.key_attribute != table.primary_key:
            raise SpecError(
                "incremental updates operate on the relation's primary key"
            )
        self.table = table
        self.key = key
        self.record = record
        self.spec: EmbeddingSpec = spec
        self.stats = IncrementalStats()
        self._domain = table.schema.attribute(spec.mark_attribute).domain
        if self._domain is None:
            raise SpecError(
                f"{spec.mark_attribute!r} is not categorical in this table"
            )
        self._wm_data = spec.ecc().encode(
            record.watermark.bits, spec.channel_length
        )
        # The engine's memoized digests make the audit/repair full scans —
        # and the steady drip of per-update fitness checks — hash each key
        # value at most once over the wrapper's whole lifetime.
        self._engine = resolve_engine(engine, key)

    # -- the fitness/encoding kernel ------------------------------------------
    def _is_fit(self, key_value: Hashable) -> bool:
        return self._engine.is_fit(key_value, self.spec.e)

    def _carrier_value(self, key_value: Hashable) -> Any:
        slot = self._engine.slot_index(key_value, self.spec.channel_length)
        bit = self._wm_data[slot]
        index = 2 * self._engine.pair_index(key_value, self._domain.size) + bit
        return self._domain.value_at(index)

    def expected_value(self, key_value: Hashable) -> Any | None:
        """The mark-attribute value a carrier tuple must hold (None if the
        tuple is not a carrier)."""
        if not self._is_fit(key_value):
            return None
        return self._carrier_value(key_value)

    # -- mutations ---------------------------------------------------------------
    def insert(self, row: list[Any] | tuple[Any, ...]) -> bool:
        """Insert a tuple, watermarking it on the fly when it is fit.

        Returns ``True`` when the inserted tuple became a carrier.
        """
        materialised = list(row)
        pk_position = self.table.schema.position(self.table.primary_key)
        mark_position = self.table.schema.position(self.spec.mark_attribute)
        key_value = materialised[pk_position]
        carrier = self._is_fit(key_value)
        if carrier:
            materialised[mark_position] = self._carrier_value(key_value)
        self.table.insert(materialised)
        self.stats.inserted += 1
        self.stats.inserted_carriers += carrier
        self.stats.log.append(("insert", key_value))
        return carrier

    def set_value(self, key_value: Hashable, attribute: str, value: Any) -> Any:
        """Update one cell; carrier cells of the mark attribute are
        immediately re-marked (the user's write is applied, then corrected,
        so the channel never silently loses a bit)."""
        previous = self.table.set_value(key_value, attribute, value)
        if attribute == self.spec.mark_attribute:
            self.stats.value_updates += 1
            expected = self.expected_value(key_value)
            if expected is not None and value != expected:
                self.table.set_value(key_value, attribute, expected)
                self.stats.value_updates_reverted += 1
                self.stats.log.append(("remark", key_value))
        return previous

    def change_key(self, key_value: Hashable, new_key: Hashable) -> bool:
        """Re-key a tuple, re-evaluating fitness under the new key.

        A tuple that becomes fit is marked; one that stops being fit keeps
        its (now meaningless) value — detection simply no longer reads it.
        Returns ``True`` when the tuple is a carrier under its new key.
        """
        self.table.set_value(key_value, self.table.primary_key, new_key)
        self.stats.key_updates += 1
        expected = self.expected_value(new_key)
        if expected is None:
            return False
        current = self.table.value(new_key, self.spec.mark_attribute)
        if current != expected:
            self.table.set_value(new_key, self.spec.mark_attribute, expected)
            self.stats.remarked_after_key_update += 1
            self.stats.log.append(("remark", new_key))
        return True

    def delete(self, key_value: Hashable) -> tuple[Any, ...]:
        """Remove a tuple (carriers included: majority voting absorbs it)."""
        return self.table.delete(key_value)

    # -- consistency audit ----------------------------------------------------------
    def _prefetch_scan(self) -> None:
        """Batch-resolve fitness/slot/pair for every current key before a
        full-table sweep, so the per-row kernel only performs dict hits."""
        plan = self._engine.plan(
            self.spec.e, self.spec.channel_length, self._domain.size
        )
        distinct = dict.fromkeys(self.table.column_view(self.table.primary_key))
        fit = plan.fitness(distinct)
        fit_values = [value for value in distinct if fit[value]]
        plan.slots(fit_values)
        plan.pairs(fit_values)

    def audit(self) -> int:
        """Count carrier tuples whose value disagrees with the channel.

        0 means the relation would decode exactly as at embedding time; a
        non-zero count localises drift introduced by writes that bypassed
        this wrapper.
        """
        self._prefetch_scan()
        disagreements = 0
        for key_value, current in self.table.iter_cells(
            self.table.primary_key, self.spec.mark_attribute
        ):
            expected = self.expected_value(key_value)
            if expected is not None and current != expected:
                disagreements += 1
        return disagreements

    def repair(self) -> int:
        """Re-mark every drifted carrier; returns the number repaired."""
        self._prefetch_scan()
        drifted = [
            (key_value, expected)
            for key_value, current in self.table.iter_cells(
                self.table.primary_key, self.spec.mark_attribute
            )
            for expected in (self.expected_value(key_value),)
            if expected is not None and current != expected
        ]
        for key_value, expected in drifted:
            self.table.set_value(
                key_value, self.spec.mark_attribute, expected
            )
        return len(drifted)


def incremental_for(
    table: Table, key: MarkKey, record: MarkRecord
) -> IncrementalWatermarker:
    """Convenience constructor mirroring the facade's naming."""
    return IncrementalWatermarker(table, key, record)


def verify_watermark_consistency(
    table: Table, key: MarkKey, watermark: Watermark, spec: EmbeddingSpec
) -> bool:
    """True iff every carrier in ``table`` holds its exact channel value."""
    record = MarkRecord(watermark=watermark, spec=spec)
    return IncrementalWatermarker(table, key, record).audit() == 0
