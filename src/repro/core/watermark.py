"""The watermark payload: a short secret bit string.

The paper's experiments use a 10-bit watermark ``wm`` with bits ``wm[i]``.
:class:`Watermark` wraps the bit tuple with the constructors owners actually
use (text tags, integers, hex) and the comparison metrics the evaluation
reports (bit matches, *mark alteration* — the y-axis of Figures 4–7).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from .errors import WatermarkingError


class Watermark:
    """An immutable sequence of watermark bits."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int]):
        materialised = tuple(bits)
        if not materialised:
            raise WatermarkingError("a watermark needs at least one bit")
        for bit in materialised:
            if bit not in (0, 1):
                raise WatermarkingError(
                    f"watermark bits must be 0 or 1, got {bit!r}"
                )
        self._bits = materialised

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "Watermark":
        """UTF-8 bytes of ``text`` as bits (8 per byte, big-endian)."""
        if not text:
            raise WatermarkingError("cannot build a watermark from empty text")
        payload = text.encode("utf-8")
        return cls(
            (byte >> shift) & 1 for byte in payload for shift in range(7, -1, -1)
        )

    @classmethod
    def from_int(cls, value: int, length: int) -> "Watermark":
        """``length`` low bits of ``value``, most significant first."""
        if length <= 0:
            raise WatermarkingError(f"length must be positive, got {length}")
        if value < 0 or value.bit_length() > length:
            raise WatermarkingError(f"{value} does not fit in {length} bits")
        return cls((value >> shift) & 1 for shift in range(length - 1, -1, -1))

    @classmethod
    def from_hex(cls, text: str, length: int | None = None) -> "Watermark":
        """Hex string as bits; ``length`` trims/validates the bit count."""
        value = int(text, 16)
        width = length if length is not None else max(1, 4 * len(text.strip()))
        return cls.from_int(value, width)

    @classmethod
    def random(cls, length: int, rng: random.Random) -> "Watermark":
        """Uniformly random ``length``-bit watermark (experiment harness)."""
        if length <= 0:
            raise WatermarkingError(f"length must be positive, got {length}")
        return cls(rng.randrange(2) for _ in range(length))

    # -- accessors ------------------------------------------------------------
    @property
    def bits(self) -> tuple[int, ...]:
        return self._bits

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self):
        return iter(self._bits)

    def __getitem__(self, index: int) -> int:
        return self._bits[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Watermark):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"Watermark({self.to_bitstring()!r})"

    def to_bitstring(self) -> str:
        return "".join(str(bit) for bit in self._bits)

    def to_int(self) -> int:
        value = 0
        for bit in self._bits:
            value = (value << 1) | bit
        return value

    def to_text(self) -> str:
        """Inverse of :meth:`from_text` (requires a multiple of 8 bits)."""
        if len(self._bits) % 8:
            raise WatermarkingError(
                f"{len(self._bits)} bits is not a whole number of bytes"
            )
        data = bytearray()
        for start in range(0, len(self._bits), 8):
            byte = 0
            for bit in self._bits[start:start + 8]:
                byte = (byte << 1) | bit
            data.append(byte)
        return data.decode("utf-8")

    # -- comparison metrics ------------------------------------------------------
    def matching_bits(self, other: "Watermark | Sequence[int]") -> int:
        """Number of positions where the two bit strings agree."""
        other_bits = other.bits if isinstance(other, Watermark) else tuple(other)
        if len(other_bits) != len(self._bits):
            raise WatermarkingError(
                f"cannot compare watermarks of lengths "
                f"{len(self._bits)} and {len(other_bits)}"
            )
        return sum(a == b for a, b in zip(self._bits, other_bits))

    def hamming_distance(self, other: "Watermark | Sequence[int]") -> int:
        """Number of differing bit positions."""
        return len(self._bits) - self.matching_bits(other)

    def alteration(self, other: "Watermark | Sequence[int]") -> float:
        """*Mark alteration*: fraction of bits that differ (Figures 4–7 y-axis)."""
        return self.hamming_distance(other) / len(self._bits)
