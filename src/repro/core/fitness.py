"""Fit-tuple selection (§3.2.1).

A tuple ``T_i`` is *fit* for encoding iff ``H(T_i(K), k1) mod e == 0``: its
primary-key attribute satisfies a secret criterion.  On average one tuple in
``e`` is fit, so ``e`` directly trades data alteration (fewer marked tuples)
against resilience (less redundancy) — the trade-off quantified in §4.4 and
swept in Figure 5.

Selection depends only on the individual tuple's key value and the secret
key, never on position or neighbours; that single property is what buys
immunity to re-sorting (A4), subset selection (A1) and subset addition (A2).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, Hashable

from ..crypto import keyed_hash
from ..relational import Table
from .errors import SpecError


def is_fit(key_value: Hashable, k1: bytes, e: int) -> bool:
    """``H(T(K), k1) mod e == 0`` — the paper's fitness criterion."""
    if e <= 0:
        raise SpecError(f"encoding parameter e must be positive, got {e}")
    return keyed_hash(key_value, k1) % e == 0


def fit_keys(
    table: Table, key_attribute: str, k1: bytes, e: int
) -> Iterator[Hashable]:
    """Primary-key values of the fit tuples, in physical scan order.

    ``key_attribute`` need not be the table's declared primary key: the
    multi-attribute extension (§3.3) treats other attributes as "primary key
    place-holders".  Duplicate values of a non-key ``key_attribute`` are all
    yielded (each backing tuple is a carrier).
    """
    if e <= 0:
        raise SpecError(f"encoding parameter e must be positive, got {e}")
    verdicts: dict[Hashable, bool] = {}
    for value in table.iter_cells(key_attribute):
        fit = verdicts.get(value)
        if fit is None:
            fit = verdicts[value] = keyed_hash(value, k1) % e == 0
        if fit:
            yield value


def fit_rows(
    table: Table, key_attribute: str, k1: bytes, e: int
) -> Iterator[tuple[Any, ...]]:
    """The fit tuples themselves, in physical scan order."""
    position = table.schema.position(key_attribute)
    if e <= 0:
        raise SpecError(f"encoding parameter e must be positive, got {e}")
    verdicts: dict[Hashable, bool] = {}
    for row in table:
        value = row[position]
        fit = verdicts.get(value)
        if fit is None:
            fit = verdicts[value] = keyed_hash(value, k1) % e == 0
        if fit:
            yield row


def count_fit(table: Table, key_attribute: str, k1: bytes, e: int) -> int:
    """Number of fit tuples — the realised embedding bandwidth (≈ ``N/e``)."""
    return sum(1 for _ in fit_keys(table, key_attribute, k1, e))


def expected_bandwidth(tuple_count: int, e: int) -> int:
    """Nominal bandwidth ``N/e`` the paper sizes ``wm_data`` with."""
    if e <= 0:
        raise SpecError(f"encoding parameter e must be positive, got {e}")
    return max(1, round(tuple_count / e))
