"""Command-line interface: the owner's workflow over CSV files.

Subcommands mirror the lifecycle::

    repro-wm genkey  --out key.json
    repro-wm embed   --data sales.csv --schema schema.json --key key.json \\
                     --attribute Item_Nbr --watermark "(c) ACME" --e 60 \\
                     --out marked.csv --record record.json
    repro-wm detect  --data suspect.csv --schema schema.json --key key.json \\
                     --record record.json [--remap-recovery]
    repro-wm inspect --data sales.csv --schema schema.json [--attribute A]

For relations too large to hold in memory, ``embed`` (alias ``mark``) and
``detect`` also run as bounded-memory streaming pipelines over CSV
(plain or gzip) and SQLite files::

    repro-wm mark    --input sales.csv.gz --output marked.csv.gz \\
                     --chunk-size 65536 --schema schema.json --key key.json \\
                     --attribute Item_Nbr --watermark "(c) ACME" --e 60 \\
                     --record record.json [--checkpoint run.ckpt [--resume]]
    repro-wm detect  --input suspect.csv.gz --chunk-size 65536 \\
                     --schema schema.json --key key.json --record record.json

``--input`` selects file mode (``--data`` loads in memory); the marked
output is cell-identical either way, and streamed detection is
bit-identical to the in-memory verdict.  ``--checkpoint`` makes the
embed resumable after interruption (``--resume`` picks it back up).
Streaming mode requires the schema JSON to declare the mark attribute's
full domain and serves the association channel only.

File-mode runs scale across cores with ``--workers N`` (or ``--workers
auto``): chunk decode + kernel work fan out over a process pool while an
ordered merge/commit keeps the output bytes and the detection verdict
bit-identical to a single-core run.  ``--input`` may be repeated to scan
several files as one relation (detection accumulators merge across
files).

plus the experiment harness (previously Python-API-only)::

    repro-wm sweep   --data sales.csv --schema schema.json \\
                     --attribute Item_Nbr --e 65 --attack alteration \\
                     --xs 0.2,0.4,0.6 --passes 15 \\
                     --backend vector --mode hoisted [--json out.json]
    repro-wm figure  --figure 4 --tuples 6000 --items 500 --passes 15 \\
                     --backend auto --mode auto [--json out.json]

``--backend`` selects the (bit-identical) execution backend of every
pass's embed/verify; ``--mode`` the sweep engine's execution mode
(``serial`` re-embeds per cell — the reference cost model).

Checkpointed embeds journal a chunk-hash manifest next to the
checkpoint; ``repro-wm audit --output marked.csv --checkpoint run.ckpt``
later verifies the output byte-for-byte against it, localizing any
corruption to the exact chunk.  ``--resume --verify-resume`` re-hashes
the surviving prefix before continuing, and ``--lock`` holds a lease so
two concurrent resumes of the same run cannot interleave.

``detect`` exits 0 when the watermark is detected and 3 when it is not, so
the tool composes into shell pipelines.  Failures carry their own codes:
4 for a corrupt checkpoint with no verified rollback target, 5 when
``--retries`` was exhausted by persistent transient I/O failures, 6
when a malformed CSV row aborted the run under ``--on-bad-rows raise``,
7 when a ``--deadline`` budget expired (the run stops at a resumable
chunk boundary — re-run with ``--resume`` and a fresh budget), and 8 for
an integrity violation (``audit`` found corrupt chunks, a verified read
hit rotted source data, or another live process holds the run lease).
File-mode runs accept ``--retries N`` (crash-safe retry with
deterministic backoff), ``--on-bad-rows {raise,skip,quarantine}`` and
``--deadline SECONDS`` (cooperative wall-clock stall-safety).
Schemas are JSON documents in the :func:`repro.relational.schema_to_json`
format.
"""

from __future__ import annotations

import argparse
import errno
import json
import sys
from pathlib import Path

from . import MarkKey, Watermark, Watermarker
from .core import MarkRecord
from .quality import MaxAlterationFraction, measure_distortion
from .relational import (
    Table,
    frequency_histogram,
    read_csv,
    schema_from_json,
    schema_to_json,
    sorted_frequency_profile,
    write_csv,
)

#: exit code for "ran fine, watermark not detected"
EXIT_NOT_DETECTED = 3

#: a checkpoint failed CRC/schema verification and no verified rollback
#: target survived — the run must not silently restart from scratch
EXIT_CHECKPOINT_CORRUPT = 4

#: a transient I/O failure outlived the retry budget (``--retries``)
EXIT_RETRY_EXHAUSTED = 5

#: a malformed CSV row aborted the run (``--on-bad-rows raise``)
EXIT_BAD_ROWS = 6

#: the run outlived its ``--deadline`` wall-clock budget and stopped at a
#: resumable boundary (re-run with --checkpoint/--resume and a fresh
#: budget to continue)
EXIT_DEADLINE_EXCEEDED = 7

#: an integrity violation: `repro-wm audit` found chunks whose bytes no
#: longer match the journalled manifest, a verified read hit a rotted
#: source chunk, or another live process holds the run lease
EXIT_INTEGRITY = 8


def _load_schema(path: str):
    return schema_from_json(Path(path).read_text(encoding="utf-8"))


def _load_key(path: str) -> MarkKey:
    return MarkKey.from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def _load_table(data_path: str, schema_path: str) -> Table:
    return read_csv(data_path, _load_schema(schema_path))


def _parse_watermark(text: str) -> Watermark:
    """Accept ``bits:1011``, ``hex:AC5`` or plain text payloads."""
    if text.startswith("bits:"):
        return Watermark(int(bit) for bit in text[5:])
    if text.startswith("hex:"):
        return Watermark.from_hex(text[4:])
    return Watermark.from_text(text)


# -- subcommands --------------------------------------------------------------

def cmd_genkey(args: argparse.Namespace) -> int:
    key = (
        MarkKey.from_seed(args.seed) if args.seed is not None
        else MarkKey.generate()
    )
    Path(args.out).write_text(
        json.dumps(key.to_dict(), indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote secret key pair to {args.out} — escrow it safely")
    return 0


def _require_one_input(args: argparse.Namespace) -> None:
    if (args.data is None) == (getattr(args, "input", None) is None):
        raise SystemExit(
            "exactly one of --data (in-memory) and --input (streaming) "
            "is required"
        )


def _retry_policy(args: argparse.Namespace):
    """``--retries N`` to a :class:`~repro.reliability.RetryPolicy` (one
    try plus N retries), or ``None`` for the historical fail-fast path."""
    retries = getattr(args, "retries", 0)
    if not retries:
        return None
    from .reliability import RetryPolicy

    return RetryPolicy(max_attempts=retries + 1)


def _deadline(args: argparse.Namespace):
    """``--deadline SECONDS`` to a :class:`~repro.reliability.Deadline`
    armed now, or ``None`` (the historical unbounded run)."""
    seconds = getattr(args, "deadline", None)
    if not seconds:
        return None
    from .reliability import Deadline

    return Deadline(seconds)


def _print_reliability(report) -> None:
    """Surface recovery telemetry when anything was recovered from."""
    if report is not None and (report.any_recovery or report.bad_rows):
        print(report.summary())


def _workers(args: argparse.Namespace):
    """``--workers`` to the ``stream_*`` parameter: an int, ``"auto"``,
    or ``None`` for the historical single-process path."""
    value = getattr(args, "workers", None)
    if value is None:
        return None
    return int(value) if value.isdigit() else value


def _input_paths(args: argparse.Namespace) -> list[str]:
    """The repeated ``--input`` values (``action="append"`` yields a
    list; a single flag still arrives as a one-element list)."""
    value = args.input
    return [value] if isinstance(value, str) else list(value)


def cmd_embed_stream(args: argparse.Namespace) -> int:
    """File-mode embed: chunked, bounded memory, optionally resumable."""
    from .core import EmbeddingSpec, default_channel_length
    from .stream import count_data_rows, open_sink, open_sources, stream_mark

    if args.output is None:
        raise SystemExit("--input (streaming embed) requires --output")
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint")
    if args.verify_resume and not args.resume:
        raise SystemExit("--verify-resume requires --resume")
    paths = _input_paths(args)
    for flag, name in (
        (args.max_alteration is not None, "--max-alteration"),
        (bool(args.p_add), "--p-add"),
        (args.frequency_channel, "--frequency-channel"),
    ):
        if flag:
            raise SystemExit(
                f"{name} is not available in streaming mode (association "
                f"channel only; quality budgets need the whole relation)"
            )
    schema = _load_schema(args.schema)
    key = _load_key(args.key)
    watermark = _parse_watermark(args.watermark)
    channel_length = args.channel_length or default_channel_length(
        sum(count_data_rows(path) for path in paths), args.e, len(watermark)
    )
    spec = EmbeddingSpec(
        key_attribute=schema.primary_key,
        mark_attribute=args.attribute,
        e=args.e,
        watermark_length=len(watermark),
        channel_length=channel_length,
        ecc_name=args.ecc,
    )
    source = open_sources(
        paths, schema, chunk_size=args.chunk_size,
        on_bad_rows=args.on_bad_rows,
    )
    result = stream_mark(
        source,
        watermark,
        key,
        spec,
        open_sink(args.output),
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        retry=_retry_policy(args),
        deadline=_deadline(args),
        workers=_workers(args),
        verify_resume=args.verify_resume,
        lock=args.lock,
    )
    domain = schema.attribute(args.attribute).domain
    record = MarkRecord(
        watermark=watermark,
        spec=spec,
        domain_values=domain.values if domain is not None else None,
        metadata={
            "source": "+".join(str(path) for path in paths),
            "tuples": result.rows,
            "streamed": True,
        },
    )
    Path(args.record).write_text(record.to_json() + "\n", encoding="utf-8")
    resumed = (
        f", resumed at chunk {result.resumed_at_chunk}"
        if result.resumed_at_chunk else ""
    )
    print(
        f"embedded {len(watermark)} bits into {result.applied} of "
        f"{result.rows} tuples ({result.chunks + result.resumed_at_chunk} "
        f"chunks of {args.chunk_size}{resumed})"
    )
    print(f"marked data   -> {args.output}")
    print(f"mark record   -> {args.record} (escrow with the key)")
    _print_reliability(result.reliability)
    return 0


def cmd_embed(args: argparse.Namespace) -> int:
    _require_one_input(args)
    if args.input is not None:
        return cmd_embed_stream(args)
    if args.out is None:
        raise SystemExit("--data (in-memory embed) requires --out")
    table = _load_table(args.data, args.schema)
    key = _load_key(args.key)
    watermark = _parse_watermark(args.watermark)
    owner = Watermarker(key, e=args.e, ecc_name=args.ecc)
    constraints = []
    if args.max_alteration is not None:
        constraints.append(MaxAlterationFraction(args.max_alteration))
    outcome = owner.embed(
        table,
        watermark,
        mark_attribute=args.attribute,
        constraints=constraints,
        p_add=args.p_add,
        with_frequency_channel=args.frequency_channel,
    )
    write_csv(outcome.table, args.out)
    Path(args.record).write_text(
        outcome.record.to_json() + "\n", encoding="utf-8"
    )
    report = measure_distortion(table, outcome.table)
    print(
        f"embedded {len(watermark)} bits into {outcome.embedding.applied} "
        f"of {len(table)} tuples ({report.tuple_change_fraction:.2%} altered"
        f", {outcome.embedding.vetoed} vetoed)"
    )
    print(f"marked data   -> {args.out}")
    print(f"mark record   -> {args.record} (escrow with the key)")
    return 0


def cmd_detect_stream(args: argparse.Namespace) -> int:
    """File-mode detect: accumulator-based, bit-identical to in-memory."""
    from .relational import CategoricalDomain
    from .stream import open_sources, stream_verify

    if args.remap_recovery:
        raise SystemExit(
            "--remap-recovery is not available in streaming mode (recovery "
            "matches the whole frequency profile); run the suspect file "
            "through --data instead"
        )
    schema = _load_schema(args.schema)
    key = _load_key(args.key)
    record = MarkRecord.from_json(
        Path(args.record).read_text(encoding="utf-8")
    )
    domain = (
        CategoricalDomain(record.domain_values)
        if record.domain_values is not None else None
    )
    # Suspect copies may hold out-of-domain values; widen per chunk and
    # decode against the escrowed canonical domain, like the in-memory
    # blind detector does.
    source = open_sources(
        _input_paths(args), schema, chunk_size=args.chunk_size,
        infer_domains=True, on_bad_rows=args.on_bad_rows,
    )
    result = stream_verify(
        source,
        key,
        record.spec,
        record.watermark,
        embedding_map=record.embedding_map,
        domain=domain,
        significance=args.significance,
        retry=_retry_policy(args),
        deadline=_deadline(args),
        workers=_workers(args),
    )
    print(
        f"association channel ({result.rows} tuples in {result.chunks} "
        f"chunks): {result.summary()}"
    )
    _print_reliability(result.reliability)
    return 0 if result.detected else EXIT_NOT_DETECTED


def cmd_detect(args: argparse.Namespace) -> int:
    _require_one_input(args)
    if args.input is not None:
        return cmd_detect_stream(args)
    table = _load_table(args.data, args.schema)
    key = _load_key(args.key)
    record = MarkRecord.from_json(
        Path(args.record).read_text(encoding="utf-8")
    )
    owner = Watermarker(
        key, e=record.spec.e, ecc_name=record.spec.ecc_name,
        significance=args.significance,
    )
    verdict = owner.verify(
        table, record, try_remap_recovery=args.remap_recovery
    )
    print(verdict.summary())
    return 0 if verdict.detected else EXIT_NOT_DETECTED


def cmd_inspect(args: argparse.Namespace) -> int:
    table = _load_table(args.data, args.schema)
    print(f"relation : {table.name}")
    print(f"tuples   : {len(table)}")
    print(f"schema   : {table.schema}")
    attributes = (
        [args.attribute] if args.attribute
        else list(table.schema.categorical_names())
    )
    for attribute in attributes:
        histogram = frequency_histogram(table, attribute)
        profile = sorted_frequency_profile(histogram)
        print(f"\n{attribute}: {len(profile)} distinct values; top 5:")
        for value, frequency in profile[:5]:
            print(f"  {value!r:>16}  {frequency:.4f}")
    return 0


def _resolve_mode(mode: str) -> str | None:
    """CLI ``--mode`` to sweep-engine mode (``auto`` -> engine default)."""
    return None if mode == "auto" else mode


def _attack_factory(args: argparse.Namespace):
    from .attacks import (
        DataLossAttack,
        HorizontalPartitionAttack,
        SubsetAdditionAttack,
        SubsetAlterationAttack,
    )

    if args.attack == "alteration":
        return lambda x: SubsetAlterationAttack(
            args.attribute, x, args.flip_probability
        )
    if args.attack == "loss":
        return lambda x: DataLossAttack(x)
    if args.attack == "horizontal":
        return lambda x: HorizontalPartitionAttack(x)
    assert args.attack == "addition"
    return lambda x: SubsetAdditionAttack(x)


def _points_payload(points) -> list[dict]:
    return [
        {
            "x": point.x,
            "mean_alteration": round(point.mean_alteration, 6),
            "alteration_stdev": round(point.alteration_stdev, 6),
            "detection_rate": round(point.detection_rate, 6),
        }
        for point in points
    ]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import format_series, sweep

    table = _load_table(args.data, args.schema)
    xs = [float(part) for part in args.xs.split(",") if part.strip()]
    if not xs:
        raise SystemExit("--xs needs at least one value")
    points = sweep(
        table,
        args.attribute,
        args.e,
        _attack_factory(args),
        xs,
        watermark_length=args.watermark_length,
        passes=args.passes,
        mode=_resolve_mode(args.mode),
        backend=args.backend,
    )
    title = (
        f"{args.attack} sweep on {args.attribute!r} (e={args.e}, "
        f"passes={args.passes}, backend={args.backend}, mode={args.mode})"
    )
    print(format_series(title, points, x_label="x", percent_x=True))
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "attack": args.attack,
                    "attribute": args.attribute,
                    "e": args.e,
                    "passes": args.passes,
                    "watermark_length": args.watermark_length,
                    "flip_probability": args.flip_probability,
                    "backend": args.backend,
                    "mode": args.mode,
                    "points": _points_payload(points),
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"series JSON   -> {args.json}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import (
        FigureConfig,
        figure4_series,
        figure5_series,
        figure6_surface,
        figure7_series,
        format_series,
        format_surface,
    )

    config = FigureConfig(
        tuple_count=args.tuples, item_count=args.items, passes=args.passes
    )
    mode = _resolve_mode(args.mode)
    kwargs = dict(config=config, mode=mode, backend=args.backend)
    payload: dict = {
        "figure": args.figure,
        "tuples": args.tuples,
        "items": args.items,
        "passes": args.passes,
        "backend": args.backend,
        "mode": args.mode,
    }
    if args.figure == 4:
        series = figure4_series(**kwargs)
        for e, points in series.items():
            print(format_series(
                f"figure 4 (e={e})", points, "attack size", percent_x=True
            ))
        payload["series"] = {
            str(e): _points_payload(points) for e, points in series.items()
        }
    elif args.figure == 5:
        series = figure5_series(**kwargs)
        for attack_size, points in series.items():
            print(format_series(
                f"figure 5 (attack={attack_size:.0%})", points, "e"
            ))
        payload["series"] = {
            f"{attack_size:g}": _points_payload(points)
            for attack_size, points in series.items()
        }
    elif args.figure == 6:
        surface = figure6_surface(**kwargs)
        print(format_surface("figure 6", surface))
        payload["surface"] = [
            {"e": e, "attack": attack, "mean_alteration": round(value, 6)}
            for e, attack, value in surface
        ]
    else:
        points = figure7_series(config=config, mode=mode, backend=args.backend)
        print(format_series("figure 7", points, "data loss", percent_x=True))
        payload["points"] = _points_payload(points)
    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"figure JSON   -> {args.json}")
    return 0


def cmd_schema(args: argparse.Namespace) -> int:
    """Print a schema JSON template inferred from a CSV header."""
    header = (
        Path(args.data).read_text(encoding="utf-8").splitlines()[0].split(",")
    )
    template = {
        "primary_key": header[0],
        "attributes": [
            {"name": name, "type": "integer" if index == 0 else "categorical",
             "domain": []} if index else {"name": name, "type": "integer"}
            for index, name in enumerate(header)
        ],
    }
    print(json.dumps(template, indent=2))
    print(
        "\n# fill in types/domains, then validate with:"
        "\n#   python -c 'from repro.relational import schema_from_json; "
        "schema_from_json(open(\"schema.json\").read())'",
        file=sys.stderr,
    )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Verify a marked output against its chunk-hash journal.

    Re-hashes every journalled chunk of the CSV/.csv.gz/SQLite output and
    localizes any corruption to the exact chunk, so an operator can tell
    "the archive rotted at chunk 17" apart from "the whole file is fake".
    Exit code 0 = every chunk verifies; 8 = integrity violation.
    """
    from .reliability import audit_stream, journal_path

    if (args.checkpoint is None) == (args.journal is None):
        raise SystemExit(
            "exactly one of --checkpoint (journal lives next to it) and "
            "--journal is required"
        )
    journal = args.journal or journal_path(args.checkpoint)
    report = audit_stream(args.output, journal=journal, table=args.table)
    print(report.summary())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"audit report  -> {args.json}")
    return 0 if report.ok else EXIT_INTEGRITY


# -- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wm",
        description="Watermark categorical relational data (Sion, ICDE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    genkey = sub.add_parser("genkey", help="generate a secret key pair")
    genkey.add_argument("--out", required=True, help="output key JSON path")
    genkey.add_argument(
        "--seed", default=None,
        help="deterministic seed (omit for a random key)",
    )
    genkey.set_defaults(handler=cmd_genkey)

    embed = sub.add_parser(
        "embed", aliases=["mark"],
        help="watermark a relation (in-memory CSV or streamed file mode)",
    )
    embed.add_argument(
        "--data", default=None, help="input CSV (in-memory mode)"
    )
    embed.add_argument(
        "--input", action="append", default=None,
        help="input CSV/.csv.gz/SQLite (streaming file mode); repeat to "
             "concatenate several files into one relation",
    )
    embed.add_argument("--schema", required=True, help="schema JSON")
    embed.add_argument("--key", required=True, help="key JSON from genkey")
    embed.add_argument(
        "--attribute", required=True, help="categorical attribute to mark"
    )
    embed.add_argument(
        "--watermark", required=True,
        help="payload: plain text, 'hex:AC5' or 'bits:1011'",
    )
    embed.add_argument("--e", type=int, default=60, help="encoding parameter")
    embed.add_argument("--ecc", default="majority", help="error code name")
    embed.add_argument(
        "--max-alteration", type=float, default=None,
        help="quality budget: max fraction of tuples altered",
    )
    embed.add_argument(
        "--p-add", type=float, default=0.0,
        help="reinforce with this fraction of synthetic fit tuples (§4.6)",
    )
    embed.add_argument(
        "--frequency-channel", action="store_true",
        help="also mark the value-frequency histogram (§4.2)",
    )
    embed.add_argument(
        "--out", default=None, help="marked CSV output (in-memory mode)"
    )
    embed.add_argument(
        "--output", default=None,
        help="marked CSV/.csv.gz/SQLite output (streaming file mode)",
    )
    embed.add_argument(
        "--chunk-size", type=int, default=65_536,
        help="rows per streamed chunk (file mode; default 65536)",
    )
    embed.add_argument(
        "--channel-length", type=int, default=None,
        help="|wm_data| override (file mode; default max(|wm|, N/e))",
    )
    embed.add_argument(
        "--checkpoint", default=None,
        help="checkpoint JSON path making a file-mode embed resumable",
    )
    embed.add_argument(
        "--resume", action="store_true",
        help="resume a file-mode embed from --checkpoint",
    )
    embed.add_argument(
        "--retries", type=int, default=0,
        help="retry transient I/O failures up to N times per operation "
             "(file mode; deterministic backoff; default 0 = fail fast)",
    )
    embed.add_argument(
        "--on-bad-rows", choices=("raise", "skip", "quarantine"),
        default="raise",
        help="file-mode policy for unparseable CSV rows: abort (default), "
             "drop, or drop + append to a .quarantine.csv sidecar",
    )
    embed.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget in seconds (file mode); expiry stops the "
             "run at a resumable chunk boundary with exit code 7",
    )
    embed.add_argument(
        "--workers", default=None,
        help="file-mode worker processes for per-chunk embed kernels "
             "('auto' sizes from cpu count); output stays byte-identical "
             "to a single-core run (default: 1)",
    )
    embed.add_argument(
        "--verify-resume", action="store_true",
        help="with --resume: re-hash the surviving output against the "
             "chunk journal and rewind to the last verified chunk, so "
             "recovery stays byte-identical even under silent bit rot",
    )
    embed.add_argument(
        "--lock", action="store_true",
        help="exactly-once run locking: hold a lease next to the "
             "checkpoint so a concurrent embed/resume of the same run "
             "fails fast with exit code 8 instead of interleaving writes",
    )
    embed.add_argument(
        "--record", required=True, help="mark record JSON output (escrow)"
    )
    embed.set_defaults(handler=cmd_embed)

    audit = sub.add_parser(
        "audit",
        help="verify a marked output against its chunk-hash journal",
    )
    audit.add_argument(
        "--output", required=True,
        help="marked CSV/.csv.gz/SQLite output to verify",
    )
    audit.add_argument(
        "--checkpoint", default=None,
        help="checkpoint path of the embed run (journal sits next to it)",
    )
    audit.add_argument(
        "--journal", default=None,
        help="explicit journal path (instead of --checkpoint)",
    )
    audit.add_argument(
        "--table", default="relation",
        help="SQLite table name (default: relation)",
    )
    audit.add_argument(
        "--json", default=None, help="also write the audit report as JSON"
    )
    audit.set_defaults(handler=cmd_audit)

    detect = sub.add_parser(
        "detect",
        help="blindly verify a suspect relation (in-memory or streamed)",
    )
    detect.add_argument(
        "--data", default=None, help="suspect CSV (in-memory mode)"
    )
    detect.add_argument(
        "--input", action="append", default=None,
        help="suspect CSV/.csv.gz/SQLite (streaming file mode); repeat "
             "to scan several files as one relation",
    )
    detect.add_argument(
        "--chunk-size", type=int, default=65_536,
        help="rows per streamed chunk (file mode; default 65536)",
    )
    detect.add_argument("--schema", required=True, help="schema JSON")
    detect.add_argument("--key", required=True, help="key JSON")
    detect.add_argument("--record", required=True, help="mark record JSON")
    detect.add_argument(
        "--significance", type=float, default=0.01,
        help="false-hit probability threshold (default 0.01)",
    )
    detect.add_argument(
        "--remap-recovery", action="store_true",
        help="attempt §4.5 bijective-remapping recovery before decoding",
    )
    detect.add_argument(
        "--retries", type=int, default=0,
        help="retry transient I/O failures up to N times per operation "
             "(file mode; deterministic backoff; default 0 = fail fast)",
    )
    detect.add_argument(
        "--on-bad-rows", choices=("raise", "skip", "quarantine"),
        default="raise",
        help="file-mode policy for unparseable CSV rows: abort (default), "
             "drop, or drop + append to a .quarantine.csv sidecar",
    )
    detect.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget in seconds (file mode); expiry stops the "
             "scan with exit code 7",
    )
    detect.add_argument(
        "--workers", default=None,
        help="file-mode worker processes for per-chunk detect kernels "
             "('auto' sizes from cpu count); the verdict stays "
             "bit-identical to a single-core scan (default: 1)",
    )
    detect.set_defaults(handler=cmd_detect)

    backend_choices = ("auto", "scalar", "engine", "vector")
    mode_choices = ("auto", "serial", "hoisted", "pooled")

    sweep = sub.add_parser(
        "sweep",
        help="run the §5 multi-pass protocol over an attack-strength axis",
    )
    sweep.add_argument("--data", required=True, help="base relation CSV")
    sweep.add_argument("--schema", required=True, help="schema JSON")
    sweep.add_argument(
        "--attribute", required=True, help="categorical attribute to mark"
    )
    sweep.add_argument("--e", type=int, default=65, help="encoding parameter")
    sweep.add_argument(
        "--attack",
        choices=("alteration", "loss", "horizontal", "addition"),
        default="alteration",
        help="attack family swept over --xs",
    )
    sweep.add_argument(
        "--xs", required=True,
        help="comma-separated attack strengths (e.g. 0.2,0.4,0.6)",
    )
    sweep.add_argument(
        "--passes", type=int, default=15,
        help="keyed passes per point (the paper uses 15)",
    )
    sweep.add_argument(
        "--watermark-length", type=int, default=10, help="|wm| bits"
    )
    sweep.add_argument(
        "--flip-probability", type=float, default=0.7,
        help="alteration bit-kill probability p (paper's estimate: 0.7)",
    )
    sweep.add_argument(
        "--backend", choices=backend_choices, default="auto",
        help="execution backend for embed/verify (bit-identical)",
    )
    sweep.add_argument(
        "--mode", choices=mode_choices, default="auto",
        help="sweep engine execution mode (serial = reference cost model)",
    )
    sweep.add_argument(
        "--json", default=None, help="optional JSON output path"
    )
    sweep.set_defaults(handler=cmd_sweep)

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's figure series"
    )
    figure.add_argument(
        "--figure", type=int, choices=(4, 5, 6, 7), required=True
    )
    figure.add_argument(
        "--tuples", type=int, default=6000, help="relation size (§5: 6000)"
    )
    figure.add_argument(
        "--items", type=int, default=500, help="distinct item count"
    )
    figure.add_argument(
        "--passes", type=int, default=15, help="keyed passes per point"
    )
    figure.add_argument("--backend", choices=backend_choices, default="auto")
    figure.add_argument("--mode", choices=mode_choices, default="auto")
    figure.add_argument(
        "--json", default=None, help="optional JSON output path"
    )
    figure.set_defaults(handler=cmd_figure)

    inspect = sub.add_parser(
        "inspect", help="show size and frequency profiles of a CSV"
    )
    inspect.add_argument("--data", required=True)
    inspect.add_argument("--schema", required=True)
    inspect.add_argument("--attribute", default=None)
    inspect.set_defaults(handler=cmd_inspect)

    schema = sub.add_parser(
        "schema-template", help="print a schema JSON skeleton for a CSV"
    )
    schema.add_argument("--data", required=True)
    schema.set_defaults(handler=cmd_schema)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from .reliability import (
        DeadlineExceededError,
        IntegrityError,
        RetryError,
        RunLockedError,
    )
    from .stream import BadRowError, CheckpointCorruptError

    # The failure taxonomy as exit codes, so shell pipelines can
    # distinguish "resume from a damaged checkpoint" from "disk kept
    # failing" from "the input itself is malformed".
    try:
        return args.handler(args)
    except CheckpointCorruptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_CORRUPT
    except RetryError as exc:
        cause = exc.__cause__
        detail = f" (last failure: {cause})" if cause is not None else ""
        print(f"error: {exc}{detail}", file=sys.stderr)
        return EXIT_RETRY_EXHAUSTED
    except BadRowError as exc:
        print(
            f"error: {exc}\n(use --on-bad-rows skip|quarantine to "
            f"continue past malformed rows)",
            file=sys.stderr,
        )
        return EXIT_BAD_ROWS
    except DeadlineExceededError as exc:
        print(
            f"error: {exc}\n(progress up to the last completed boundary "
            f"is durable; re-run with --checkpoint ... --resume and a "
            f"fresh --deadline to continue)",
            file=sys.stderr,
        )
        return EXIT_DEADLINE_EXCEEDED
    except RunLockedError as exc:
        print(
            f"error: {exc}\n(another process holds this run's lease; "
            f"wait for it to finish, or remove the .lock file if it is "
            f"provably dead)",
            file=sys.stderr,
        )
        return EXIT_INTEGRITY
    except IntegrityError as exc:
        print(
            f"error: {exc}\n(run `repro-wm audit` to localize the damage,"
            f" restore the corrupt chunks from a replica, then "
            f"--resume --verify-resume)",
            file=sys.stderr,
        )
        return EXIT_INTEGRITY
    except OSError as exc:
        if exc.errno != errno.ENOSPC:
            raise
        print(
            f"error: {exc}\n(disk full; progress up to the last durable "
            f"boundary is checkpointed — free space and re-run with "
            f"--checkpoint ... --resume to continue)",
            file=sys.stderr,
        )
        return EXIT_RETRY_EXHAUSTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
